//! Online ingest: a generation-swapping serving layer over
//! [`SealEngine`].
//!
//! The frozen-arena design makes one engine immutable at query time —
//! perfect for lock-free serving, useless for ingest. [`LiveEngine`]
//! layers generations on top:
//!
//! * **Queries** run against the *current* generation, an
//!   `Arc<SealEngine>` cloned per query (or per batch): readers never
//!   hold a lock across a probe, only for the nanosecond-scale `Arc`
//!   clone. On top of the generation's answers, the **staged delta**
//!   — objects pushed since the last refresh — is naive-scanned with
//!   the current generation's *frozen* corpus weights, so new objects
//!   are answerable immediately.
//! * **[`push`](LiveEngine::push)** appends to the staged delta.
//!   Delta objects are advertised under the ids they will keep
//!   forever: `generation_len + position_in_delta`, exactly the ids
//!   [`ObjectStore::extended`] assigns at the next refresh.
//! * **[`refresh`](LiveEngine::refresh)** builds the next generation
//!   — the union store with recomputed idf weights, global token
//!   order and space, indexed via
//!   [`SealEngine::build_next_generation`] (which reuses the
//!   hierarchical filter's per-token HSS selections for tokens the
//!   delta did not touch) — **off the swap lock**, while readers keep
//!   serving the old generation, then atomically swaps the `Arc` in
//!   and drops the consumed delta prefix. No reader ever blocks on
//!   the builder.
//!
//! # The staleness window
//!
//! Between a push and the next refresh, delta objects are scanned with
//! the **current generation's** idf weights and the current
//! generation's answers come from bounds computed before the delta
//! existed. Concretely: a staged object's textual similarity is
//! evaluated as if the corpus were the old one (its own tokens do not
//! yet lower anyone's idf), and frozen objects' answers cannot shift
//! until the swap. This window is the price of lock-free reads; it
//! closes completely at `refresh()`, after which answers are
//! **identical to a fresh [`SealEngine::build`] over the union**
//! (pinned by the `tests/live_ingest.rs` proptests). Deployments that
//! cannot tolerate it refresh more often — a refresh never stalls
//! readers and costs less than a fresh build (per-token HSS
//! selections are reused for tokens the delta did not touch; the
//! posting arena itself is rebuilt, because idf weights shift with
//! every corpus change) — and refreshes are safe to run from any
//! thread.
//!
//! ```
//! use seal_core::{FilterKind, LiveEngine, ObjectStore, Query, RoiObject};
//! use seal_geom::Rect;
//! use seal_text::TokenSet;
//! use std::sync::Arc;
//!
//! let store = Arc::new(ObjectStore::from_labeled(vec![
//!     (Rect::new(0.0, 0.0, 40.0, 40.0).unwrap(), vec!["coffee", "mocha"]),
//!     (Rect::new(80.0, 80.0, 120.0, 120.0).unwrap(), vec!["tea"]),
//! ]));
//! let live = LiveEngine::new(store.clone(), FilterKind::Token);
//!
//! // Ingest a new object: answerable immediately, no index rebuild.
//! let dict = store.dictionary().unwrap();
//! let coffee = TokenSet::from_ids(dict.get("coffee"));
//! live.push(RoiObject::new(Rect::new(5.0, 5.0, 45.0, 45.0).unwrap(), coffee.clone()));
//! let q = Query::new(Rect::new(0.0, 0.0, 50.0, 50.0).unwrap(), coffee, 0.3, 0.3).unwrap();
//! assert_eq!(live.search(&q).answers.len(), 2);
//!
//! // Fold the delta into the next generation; answers now come from
//! // real indexes with refreshed corpus weights. The refresh *is*
//! // the staleness window closing: "coffee" just became more common,
//! // its idf dropped, and the old two-token object no longer clears
//! // τ_T = 0.3 — exactly what a fresh build over the union returns.
//! let stats = live.refresh();
//! assert_eq!(stats.generation, 1);
//! assert_eq!(stats.merged, 1);
//! assert_eq!(live.search(&q).answers.len(), 1);
//! assert_eq!(live.staged_len(), 0);
//! ```

use crate::{
    FilterKind, ObjectId, ObjectStore, Query, QueryContext, RoiObject, SealEngine, SearchResult,
    SimilarityConfig,
};
use std::sync::{Arc, Mutex};

/// What one [`LiveEngine::refresh`] did (timings in seconds so bench
/// and CLI reporting need no conversion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshStats {
    /// The generation now being served (0 = the initial build; +1 per
    /// refresh that merged a non-empty delta).
    pub generation: u64,
    /// Staged objects folded into the new generation (0 = the refresh
    /// was a no-op and nothing was rebuilt or swapped).
    pub merged: usize,
    /// Objects in the new generation's store.
    pub total: usize,
    /// Wall-clock seconds spent building the next generation (store
    /// extension + index build; excludes the swap, which is an `Arc`
    /// store under a brief lock).
    pub build_seconds: f64,
    /// True when the previous generation's per-token HSS selections
    /// were reused (see [`SealEngine::build_next_generation`]).
    pub scheme_reused: bool,
}

/// An immutable view of the staged delta: a spine of frozen chunks in
/// push order. Cloning a snapshot is a few refcount bumps; iterating
/// walks the chunks in order, so overlay ids stay dense.
///
/// The chunking is what keeps `push` O(1) under concurrent reads: a
/// push lands in the newest chunk while that chunk is unshared
/// (`Arc::get_mut`), and starts a fresh chunk the moment a reader
/// snapshot still holds it — the staged objects themselves are
/// **never copied** on a push, no matter how many readers are in
/// flight (a flat `Arc<Vec>` with `make_mut` would deep-copy the
/// whole delta on every push that raced a query).
#[derive(Clone, Default)]
pub struct DeltaSnapshot {
    chunks: Vec<Arc<Vec<RoiObject>>>,
    len: usize,
}

impl DeltaSnapshot {
    /// Staged objects in the snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The staged objects, oldest first (overlay id = base + position).
    pub fn iter(&self) -> impl Iterator<Item = &RoiObject> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Appends one object (writer side; O(1) amortized — see the type
    /// docs).
    fn push(&mut self, object: RoiObject) {
        match self.chunks.last_mut().and_then(Arc::get_mut) {
            Some(tail) => tail.push(object),
            None => self.chunks.push(Arc::new(vec![object])),
        }
        self.len += 1;
    }

    /// Appends a batch (writer side).
    fn extend(&mut self, objects: impl IntoIterator<Item = RoiObject>) {
        match self.chunks.last_mut().and_then(Arc::get_mut) {
            Some(tail) => {
                let before = tail.len();
                tail.extend(objects);
                self.len += tail.len() - before;
            }
            None => {
                let chunk: Vec<RoiObject> = objects.into_iter().collect();
                if !chunk.is_empty() {
                    self.len += chunk.len();
                    self.chunks.push(Arc::new(chunk));
                }
            }
        }
    }

    /// Drops the oldest `n` objects (the prefix a refresh absorbed).
    /// Whole chunks are released by refcount; a chunk straddling the
    /// boundary keeps its suffix (possible when pushes re-entered the
    /// tail chunk after the builder dropped its snapshot).
    fn drop_prefix(&mut self, mut n: usize) {
        self.len -= n.min(self.len);
        while n > 0 {
            let Some(first) = self.chunks.first() else {
                return;
            };
            if first.len() <= n {
                n -= first.len();
                self.chunks.remove(0);
            } else {
                self.chunks[0] = Arc::new(first[n..].to_vec());
                return;
            }
        }
    }
}

/// The swappable state: which engine is current and what is staged.
/// One mutex guards both so a reader can never pair a new generation
/// with a delta whose prefix that generation already absorbed (which
/// would double-count the prefix and mis-assign overlay ids).
struct LiveState {
    engine: Arc<SealEngine>,
    delta: DeltaSnapshot,
    generation: u64,
}

/// A lock-free-reads, single-writer serving layer that accepts pushes
/// while queries run and folds them into the next index generation on
/// [`refresh`](LiveEngine::refresh). See the [module docs](self) for
/// the protocol and the staleness window.
pub struct LiveEngine {
    kind: FilterKind,
    cfg: SimilarityConfig,
    opts: crate::BuildOpts,
    state: Mutex<LiveState>,
    /// Serializes refreshes: concurrent callers queue here, not on
    /// `state`, so readers stay unblocked while a build runs.
    refresh_gate: Mutex<()>,
}

impl LiveEngine {
    /// Builds generation 0 over `store` with the chosen filter
    /// (default similarity configuration and build options).
    pub fn new(store: Arc<ObjectStore>, kind: FilterKind) -> Self {
        Self::with_opts(
            store,
            kind,
            SimilarityConfig::default(),
            crate::BuildOpts::default(),
        )
    }

    /// Builds generation 0 with explicit similarity configuration and
    /// build options. `opts.threads` is reused by every refresh for
    /// the build-side fan-out (0 = one worker per core).
    pub fn with_opts(
        store: Arc<ObjectStore>,
        kind: FilterKind,
        cfg: SimilarityConfig,
        opts: crate::BuildOpts,
    ) -> Self {
        let engine = Arc::new(SealEngine::build_with_opts(store, kind, cfg, opts));
        LiveEngine {
            kind,
            cfg,
            opts,
            state: Mutex::new(LiveState {
                engine,
                delta: DeltaSnapshot::default(),
                generation: 0,
            }),
            refresh_gate: Mutex::new(()),
        }
    }

    /// Stages an object for the next generation. Visible to queries
    /// immediately (scanned with the current generation's frozen
    /// weights) under the id it will keep after the next refresh.
    /// Returns that id. O(1) amortized even while readers hold
    /// snapshots (see [`DeltaSnapshot`]).
    pub fn push(&self, object: RoiObject) -> ObjectId {
        let mut s = self.state.lock().expect("live state lock");
        let id = ObjectId((s.engine.store().len() + s.delta.len()) as u32);
        s.delta.push(object);
        id
    }

    /// Stages a batch of objects (one lock round for the whole batch).
    /// Returns the id of the first staged object, with the rest
    /// consecutive — `None` when the iterator was empty (so callers
    /// can't mistake the next future id for a staged one).
    pub fn push_all<I: IntoIterator<Item = RoiObject>>(&self, objects: I) -> Option<ObjectId> {
        let mut s = self.state.lock().expect("live state lock");
        let first = ObjectId((s.engine.store().len() + s.delta.len()) as u32);
        let before = s.delta.len();
        s.delta.extend(objects);
        (s.delta.len() > before).then_some(first)
    }

    /// A consistent read snapshot: the current generation's engine and
    /// the staged delta, captured under one lock acquisition (held
    /// only for a handful of `Arc` clones — never across a probe). The
    /// delta's overlay ids start at `engine.store().len()`.
    pub fn snapshot(&self) -> (Arc<SealEngine>, DeltaSnapshot) {
        let s = self.state.lock().expect("live state lock");
        (s.engine.clone(), s.delta.clone())
    }

    /// The current generation's engine (for diagnostics: index bytes,
    /// filter name, store access).
    pub fn engine(&self) -> Arc<SealEngine> {
        self.state.lock().expect("live state lock").engine.clone()
    }

    /// The generation currently served (0 until the first non-empty
    /// refresh).
    pub fn generation(&self) -> u64 {
        self.state.lock().expect("live state lock").generation
    }

    /// Objects staged since the last refresh.
    pub fn staged_len(&self) -> usize {
        self.state.lock().expect("live state lock").delta.len()
    }

    /// Total objects answerable right now: current generation plus
    /// staged delta.
    pub fn len(&self) -> usize {
        let s = self.state.lock().expect("live state lock");
        s.engine.store().len() + s.delta.len()
    }

    /// True when no object is answerable (empty generation, empty
    /// delta).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answers a query against the current generation plus the staged
    /// delta (thread-local scratch; see [`SealEngine::search`]).
    pub fn search(&self, q: &Query) -> SearchResult {
        let (engine, delta) = self.snapshot();
        let mut result = engine.search(q);
        overlay_delta(&engine, &delta, self.cfg, q, &mut result);
        result
    }

    /// Answers a query using caller-owned scratch (the serving-loop
    /// pattern; see [`SealEngine::search_with_ctx`]).
    pub fn search_with_ctx(&self, q: &Query, ctx: &mut QueryContext) -> SearchResult {
        let (engine, delta) = self.snapshot();
        let mut result = engine.search_with_ctx(q, ctx);
        overlay_delta(&engine, &delta, self.cfg, q, &mut result);
        result
    }

    /// Answers a batch in parallel over one snapshot: every query in
    /// the batch sees the same generation and the same staged delta,
    /// even if a refresh swaps mid-batch. `threads` follows the usual
    /// convention (0 = one worker per core).
    pub fn search_batch(&self, queries: &[Query], threads: usize) -> Vec<SearchResult> {
        let (engine, delta) = self.snapshot();
        let mut results = engine.search_batch(queries, threads);
        if !delta.is_empty() {
            // The overlay fans out over the same worker budget as the
            // generation probe — a sequential O(queries × delta) scan
            // here would cap batch throughput whenever the staged
            // delta grows between refreshes.
            let cfg = self.cfg;
            let overlays: Vec<SearchResult> =
                seal_index::parallel::map_indexed(queries.len(), threads, |i| {
                    let mut r = SearchResult {
                        answers: Vec::new(),
                        stats: crate::SearchStats::new(),
                    };
                    overlay_delta(&engine, &delta, cfg, &queries[i], &mut r);
                    r
                });
            for (result, overlay) in results.iter_mut().zip(overlays) {
                result.answers.extend_from_slice(&overlay.answers);
                result.stats.results += overlay.stats.results;
                result.stats.candidates += overlay.stats.candidates;
                result.stats.verify_time += overlay.stats.verify_time;
            }
        }
        results
    }

    /// Folds the staged delta into the **next generation**: extends
    /// the store (idf weights, global token order and space recomputed
    /// over the union), builds the next engine — off the swap lock, so
    /// readers keep serving the old generation throughout — and swaps
    /// the `Arc` in. Objects pushed *during* the build stay staged for
    /// the following refresh; their overlay ids are unaffected by the
    /// swap.
    ///
    /// Safe to call from any thread; concurrent refreshes serialize.
    /// A refresh with nothing staged is a no-op (no rebuild, no
    /// generation bump). After a non-empty refresh, answers are
    /// identical to a fresh [`SealEngine::build`] over the union
    /// corpus.
    pub fn refresh(&self) -> RefreshStats {
        self.refresh_via(None, false, |prev, staged| {
            Arc::new(prev.store().extended(staged))
        })
    }

    /// The generalized refresh every public flavor delegates to.
    ///
    /// * `cap` limits how much of the staged delta this refresh
    ///   absorbs: `Some(n)` merges only the first `n` staged objects
    ///   (pushes that landed after the caller decided on `n` stay
    ///   staged), `None` merges everything in the snapshot. The
    ///   sharding layer needs the cap: it computes one set of global
    ///   corpus artifacts over every shard's staged *prefix*, then
    ///   must merge exactly those prefixes — an uncapped merge would
    ///   fold in objects the artifacts never saw.
    /// * `force` rebuilds and swaps (bumping the generation) even with
    ///   an empty merge — how a sharded refresh moves an *untouched*
    ///   shard onto the new weight epoch. For the hierarchical filter
    ///   an empty-delta rebuild reuses every per-token HSS selection
    ///   (the scheme extension is the identity), so the forced rebuild
    ///   pays only posting re-bounding, not selection.
    /// * `make_union` builds the next generation's store from the
    ///   previous engine and the absorbed prefix — `extended` for the
    ///   standalone engine, `extended_with_artifacts` under a sharded
    ///   parent.
    pub(crate) fn refresh_via(
        &self,
        cap: Option<usize>,
        force: bool,
        make_union: impl FnOnce(&SealEngine, &[RoiObject]) -> Arc<ObjectStore>,
    ) -> RefreshStats {
        let _builder = self.refresh_gate.lock().expect("refresh gate");
        let (prev, delta) = self.snapshot();
        let merged = cap.map_or(delta.len(), |c| c.min(delta.len()));
        if merged == 0 && !force {
            let s = self.state.lock().expect("live state lock");
            return RefreshStats {
                generation: s.generation,
                merged: 0,
                total: s.engine.store().len(),
                build_seconds: 0.0,
                scheme_reused: false,
            };
        }
        let start = std::time::Instant::now();
        let staged: Vec<RoiObject> = delta.iter().take(merged).cloned().collect();
        // Release the delta snapshot before the (long) index build so
        // pushes arriving during the window can keep filling the tail
        // chunk instead of opening a new chunk per snapshot boundary.
        drop(delta);
        let union = make_union(&prev, &staged);
        drop(staged);
        let total = union.len();
        let built = SealEngine::build_next_generation(
            &prev,
            union,
            self.kind,
            self.cfg,
            self.opts,
            prev.store().len(),
        );
        let build_seconds = start.elapsed().as_secs_f64();
        let next = Arc::new(built.engine);
        let mut s = self.state.lock().expect("live state lock");
        s.engine = next;
        // Pushes only ever append, so the first `merged` staged
        // objects are exactly the ones the new generation absorbed.
        s.delta.drop_prefix(merged);
        s.generation += 1;
        RefreshStats {
            generation: s.generation,
            merged,
            total,
            build_seconds,
            scheme_reused: built.scheme_reused,
        }
    }

    /// Runs one **exact** threshold search at `τ = tau` (generation
    /// plus staged overlay, one consistent snapshot) and scores every
    /// answer by `α·simR + (1−α)·simT` under the snapshot's frozen
    /// corpus weights. Returns unranked `(id, score)` pairs — the
    /// building block `search_top_k` and the sharded merge rank, so
    /// both rank identical scores from identical snapshots.
    pub fn search_scored(
        &self,
        region: seal_geom::Rect,
        tokens: &seal_text::TokenSet,
        tau: f64,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        let alpha = alpha.clamp(0.0, 1.0);
        let (engine, delta) = self.snapshot();
        let q = Query::new(region, tokens.clone(), tau, tau).expect("tau stays within (0,1]");
        let mut result = engine.search(&q);
        overlay_delta(&engine, &delta, self.cfg, &q, &mut result);
        let w = engine.store().weights();
        let scoring_q =
            Query::new(region, tokens.clone(), 1.0, 1.0).expect("static thresholds are valid");
        let base = engine.store().len();
        let staged: Vec<&RoiObject> = delta.iter().collect();
        result
            .answers
            .into_iter()
            .map(|id| {
                let o = if id.index() < base {
                    engine.store().get(id)
                } else {
                    staged[id.index() - base]
                };
                let s = alpha * self.cfg.spatial_sim(&scoring_q, o)
                    + (1.0 - alpha) * self.cfg.textual_sim(&scoring_q, o, w);
                (id, s)
            })
            .collect()
    }

    /// Top-k by iterative threshold deepening over the live view —
    /// the same τ-halving loop, scoring and `total_cmp`-then-id
    /// ranking as [`SealEngine::search_top_k`], with the staged delta
    /// overlaid at every depth (staged objects scored with the frozen
    /// generation weights, like every other delta answer).
    pub fn search_top_k(
        &self,
        region: seal_geom::Rect,
        tokens: seal_text::TokenSet,
        k: usize,
        alpha: f64,
    ) -> Vec<(ObjectId, f64)> {
        let mut tau = 0.5f64;
        const TAU_MIN: f64 = 0.01;
        let mut scored = loop {
            let found = self.search_scored(region, &tokens, tau, alpha);
            if found.len() >= k || tau <= TAU_MIN {
                break found;
            }
            tau = (tau / 2.0).max(TAU_MIN);
        };
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// Appends the staged delta's answers to a generation result: a naive
/// scan under the generation's **frozen** weights (the staleness
/// window of the module docs), ids offset past the generation's store.
/// Mirrors what `NaiveFilter` + `Sig-Verify` would do, so delta
/// semantics match the oracle over "old corpus + this object".
fn overlay_delta(
    engine: &SealEngine,
    delta: &DeltaSnapshot,
    cfg: SimilarityConfig,
    q: &Query,
    result: &mut SearchResult,
) {
    if delta.is_empty() {
        return;
    }
    let start = std::time::Instant::now();
    let base = engine.store().len() as u32;
    let weights = engine.store().weights();
    for (i, o) in delta.iter().enumerate() {
        if cfg.is_answer(q, o, weights) {
            result.answers.push(ObjectId(base + i as u32));
            result.stats.results += 1;
        }
    }
    result.stats.candidates += delta.len();
    result.stats.verify_time += start.elapsed();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure1_store;
    use crate::verify::naive_search;
    use seal_geom::Rect;
    use seal_text::{TokenId, TokenSet};

    fn delta_objects() -> Vec<RoiObject> {
        vec![
            // Overlaps the Example 1 query region with its tokens.
            RoiObject::new(
                Rect::new(22.0, 12.0, 68.0, 43.0).unwrap(),
                TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]),
            ),
            RoiObject::new(
                Rect::new(100.0, 100.0, 118.0, 118.0).unwrap(),
                TokenSet::from_ids([TokenId(4)]),
            ),
        ]
    }

    #[test]
    fn pushed_objects_are_answerable_before_refresh() {
        let (store, q) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::seal_default());
        let before = live.search(&q).sorted().answers;
        assert_eq!(before, vec![ObjectId(1)], "Example 1 baseline");
        let id = live.push(delta_objects()[0].clone());
        assert_eq!(id, ObjectId(7), "delta ids continue the store's");
        let after = live.search(&q).sorted().answers;
        assert_eq!(after, vec![ObjectId(1), ObjectId(7)], "visible immediately");
        assert_eq!(live.len(), 8);
        assert_eq!(live.staged_len(), 1);
        assert_eq!(live.generation(), 0);
    }

    #[test]
    fn refresh_matches_fresh_build_over_the_union() {
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        for kind in [
            FilterKind::Token,
            FilterKind::TokenCompressed,
            FilterKind::Grid { side: 8 },
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
        ] {
            let live = LiveEngine::new(store.clone(), kind);
            let delta = delta_objects();
            live.push_all(delta.clone());
            let stats = live.refresh();
            assert_eq!(stats.generation, 1);
            assert_eq!(stats.merged, 2);
            assert_eq!(stats.total, 9);
            assert_eq!(live.staged_len(), 0);
            let union = Arc::new(store.extended(&delta));
            let fresh = SealEngine::build(union, kind);
            for (tr, tt) in [(0.1, 0.1), (0.25, 0.3), (0.6, 0.6)] {
                let q = q0.with_thresholds(tr, tt).unwrap();
                assert_eq!(
                    live.search(&q).sorted().answers,
                    fresh.search(&q).sorted().answers,
                    "{kind:?} τ=({tr},{tt})"
                );
            }
        }
    }

    #[test]
    fn empty_refresh_is_a_no_op() {
        let (store, _q) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::Token);
        let stats = live.refresh();
        assert_eq!(stats.generation, 0);
        assert_eq!(stats.merged, 0);
        assert_eq!(stats.total, 7);
        assert!(!stats.scheme_reused);
        assert_eq!(live.generation(), 0);
    }

    #[test]
    fn hierarchical_refresh_reuses_the_scheme() {
        let (store, _q) = figure1_store();
        let live = LiveEngine::new(
            Arc::new(store),
            FilterKind::Hierarchical {
                max_level: 4,
                budget: 8,
            },
        );
        live.push_all(delta_objects());
        let stats = live.refresh();
        assert!(
            stats.scheme_reused,
            "delta inside the space MBR reuses HSS selections"
        );
        assert!(stats.build_seconds >= 0.0);
    }

    #[test]
    fn delta_overlay_uses_frozen_weights() {
        // The staleness window, pinned: before the refresh the staged
        // object is judged with the old corpus's idf weights; the
        // oracle over "old corpus + object" must agree.
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let live = LiveEngine::new(store.clone(), FilterKind::Token);
        let o = delta_objects()[0].clone();
        live.push(o.clone());
        let q = q0.with_thresholds(0.25, 0.3).unwrap();
        let got = live.search(&q).sorted().answers;
        let cfg = SimilarityConfig::default();
        let mut expect = naive_search(&store, &cfg, &q);
        if cfg.is_answer(&q, &o, store.weights()) {
            expect.push(ObjectId(store.len() as u32));
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn batch_sees_one_consistent_snapshot() {
        let (store, q0) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::Adaptive { side: 8 });
        assert_eq!(live.push_all(Vec::new()), None, "empty batch stages no id");
        assert_eq!(live.push_all(delta_objects()), Some(ObjectId(7)));
        let queries: Vec<Query> = [(0.1, 0.1), (0.25, 0.3), (0.5, 0.5)]
            .iter()
            .map(|&(tr, tt)| q0.with_thresholds(tr, tt).unwrap())
            .collect();
        let sequential: Vec<Vec<ObjectId>> = queries
            .iter()
            .map(|q| live.search(q).sorted().answers)
            .collect();
        for threads in [0usize, 1, 4] {
            let batch: Vec<Vec<ObjectId>> = live
                .search_batch(&queries, threads)
                .into_iter()
                .map(|r| r.sorted().answers)
                .collect();
            assert_eq!(batch, sequential, "threads={threads}");
        }
    }

    #[test]
    fn pushes_during_a_refresh_stay_staged() {
        // Simulated interleaving (the real concurrent test lives in
        // tests/live_ingest.rs): push, refresh, push again — the
        // second push must survive the swap with a stable id.
        let (store, q0) = figure1_store();
        let store = Arc::new(store);
        let live = LiveEngine::new(store.clone(), FilterKind::Token);
        let delta = delta_objects();
        let id0 = live.push(delta[0].clone());
        assert_eq!(id0, ObjectId(7));
        live.refresh();
        let id1 = live.push(delta[1].clone());
        assert_eq!(id1, ObjectId(8), "ids stay dense across the swap");
        assert_eq!(live.staged_len(), 1);
        assert_eq!(live.len(), 9);
        let q = q0.with_thresholds(0.1, 0.1).unwrap();
        let live_answers = live.search(&q).sorted().answers;
        // After the second refresh everything is frozen and must match
        // a fresh union build exactly.
        live.refresh();
        assert_eq!(live.generation(), 2);
        let union = Arc::new(store.extended(&delta));
        let fresh = SealEngine::build(union, FilterKind::Token);
        assert_eq!(
            live.search(&q).sorted().answers,
            fresh.search(&q).sorted().answers
        );
        // And the pre-refresh overlay had already surfaced both ids.
        assert!(live_answers.contains(&ObjectId(7)) || !live_answers.is_empty());
    }

    #[test]
    fn pushes_under_an_outstanding_snapshot_do_not_copy_staged_objects() {
        let (store, q0) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::Token);
        let delta = delta_objects();
        live.push(delta[0].clone());
        // A reader snapshot pins the tail chunk...
        let (_engine, pinned) = live.snapshot();
        let pinned_chunk = pinned.chunks[0].clone();
        // ...so the next push must open a new chunk, leaving the
        // pinned one untouched (same allocation, same length).
        live.push(delta[1].clone());
        let (_engine2, now) = live.snapshot();
        assert_eq!(now.len(), 2);
        assert_eq!(now.chunks.len(), 2, "racing push opens a fresh chunk");
        assert!(
            Arc::ptr_eq(&now.chunks[0], &pinned_chunk),
            "pinned chunk must be shared, not copied"
        );
        assert_eq!(pinned.len(), 1, "old snapshot still sees one object");
        // Once the reader snapshots are gone, pushes fill the tail
        // chunk in place again.
        drop(pinned);
        drop(now);
        live.push(delta[0].clone());
        let (_engine3, after) = live.snapshot();
        assert_eq!(after.len(), 3);
        assert_eq!(after.chunks.len(), 2, "tail chunk reused while unshared");
        // And the overlay sees all staged objects in push order.
        let q = q0.with_thresholds(0.1, 0.1).unwrap();
        let answers = live.search(&q).sorted().answers;
        assert!(answers.contains(&ObjectId(7)) && answers.contains(&ObjectId(9)));
    }

    #[test]
    fn drop_prefix_handles_chunk_boundaries() {
        let mut d = DeltaSnapshot::default();
        let objs = delta_objects();
        d.push(objs[0].clone());
        let pin = d.clone(); // force a chunk break
        d.push(objs[1].clone());
        d.push(objs[0].clone());
        drop(pin);
        assert_eq!(d.len(), 3);
        assert_eq!(d.chunks.len(), 2);
        // Drop a prefix that splits the second chunk.
        d.drop_prefix(2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.iter().count(), 1);
        assert_eq!(d.iter().next().unwrap(), &objs[0]);
        d.drop_prefix(5); // over-drop is clamped
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn live_top_k_matches_engine_top_k_without_delta() {
        let (store, q) = figure1_store();
        let store = Arc::new(store);
        let engine = SealEngine::build(store.clone(), FilterKind::Token);
        let live = LiveEngine::new(store, FilterKind::Token);
        for alpha in [0.0, 0.5, 1.0] {
            for k in [1usize, 3, 100] {
                assert_eq!(
                    live.search_top_k(q.region, q.tokens.clone(), k, alpha),
                    engine.search_top_k(q.region, q.tokens.clone(), k, alpha),
                    "k={k} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn live_top_k_sees_staged_objects() {
        let (store, q) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::Token);
        // A staged near-duplicate of the query region must rank near
        // the top before any refresh.
        live.push(delta_objects()[0].clone());
        let top = live.search_top_k(q.region, q.tokens.clone(), 2, 0.5);
        assert!(
            top.iter().any(|(id, _)| *id == ObjectId(7)),
            "staged object missing from top-k: {top:?}"
        );
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn forced_refresh_with_empty_delta_swaps_a_generation() {
        let (store, _q) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::Token);
        let stats = live.refresh_via(Some(0), true, |prev, staged| {
            assert!(staged.is_empty());
            Arc::new(prev.store().extended(staged))
        });
        assert_eq!(stats.generation, 1, "forced refresh bumps the generation");
        assert_eq!(stats.merged, 0);
        assert_eq!(live.generation(), 1);
    }

    #[test]
    fn capped_refresh_merges_only_the_prefix() {
        let (store, q0) = figure1_store();
        let live = LiveEngine::new(Arc::new(store), FilterKind::Token);
        let delta = delta_objects();
        live.push_all(delta.clone());
        let stats = live.refresh_via(Some(1), false, |prev, staged| {
            assert_eq!(staged.len(), 1);
            Arc::new(prev.store().extended(staged))
        });
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.total, 8);
        assert_eq!(live.staged_len(), 1, "second staged object survives");
        // The survivor keeps its id and stays answerable.
        let q = q0.with_thresholds(0.1, 0.1).unwrap();
        let answers = live.search(&q).sorted().answers;
        assert!(answers.contains(&ObjectId(7)));
    }

    #[test]
    fn empty_live_engine_is_safe() {
        let store = Arc::new(ObjectStore::from_objects(Vec::new(), 0));
        let live = LiveEngine::new(store, FilterKind::Naive);
        assert!(live.is_empty());
        live.push(RoiObject::new(
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            TokenSet::from_ids([TokenId(0)]),
        ));
        assert!(!live.is_empty());
        let q = Query::with_token_ids(
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            [TokenId(0)],
            0.5,
            0.5,
        )
        .unwrap();
        assert_eq!(live.search(&q).answers, vec![ObjectId(0)]);
        let stats = live.refresh();
        assert_eq!(stats.merged, 1);
        assert_eq!(live.search(&q).answers, vec![ObjectId(0)]);
    }
}
