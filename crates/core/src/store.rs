//! The object collection: regions, tokens, corpus weights, global order.

use crate::{ObjectId, RoiObject};
use seal_geom::Rect;
use seal_text::{Dictionary, GlobalTokenOrder, IdfWeights, TokenSet, TokenWeights};
use serde::{Deserialize, Serialize};

/// Summary statistics of a store (the "Data statistics" rows of
/// Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Number of objects `|O|`.
    pub objects: usize,
    /// Average region area.
    pub avg_region_area: f64,
    /// Area of the entire space `R` (MBR of all regions).
    pub space_area: f64,
    /// Average number of tokens per object.
    pub avg_token_count: f64,
    /// Number of distinct tokens.
    pub vocab_size: usize,
    /// Heap bytes of the raw data (regions + token-id allocations) —
    /// Table 1's "Data size" row. **Capacity**-based like the index
    /// size accounting, so live stores with staged capacity are not
    /// undercounted.
    pub data_bytes: usize,
}

/// The corpus-level artifacts a store carries besides its objects: the
/// space MBR, the idf weights, the global token order and the
/// vocabulary size. Everything a filter build or a verification derives
/// beyond per-object data comes from these four values.
///
/// They exist as a first-class carrier because of **sharding**: a
/// partition of the corpus must answer queries with the *global*
/// corpus's weights, order and space — not artifacts recomputed over
/// its own slice, which would shift idf weights and change both
/// posting bounds and query-side cut thresholds. `ShardedEngine`
/// computes one set of artifacts over the whole corpus and injects it
/// into every shard-local store via
/// [`ObjectStore::with_artifacts`] / [`ObjectStore::extended_with_artifacts`],
/// which is what makes per-shard answers exactly the global answers
/// restricted to that shard's objects.
#[derive(Debug, Clone)]
pub struct CorpusArtifacts {
    /// The entire space `R` (MBR of all regions, padded to positive
    /// extent exactly like [`ObjectStore::from_objects`] pads it).
    pub space: Rect,
    /// Corpus idf weights `w(t) = ln(|O| / count(t,O))`.
    pub weights: IdfWeights,
    /// Global token order (descending idf).
    pub token_order: GlobalTokenOrder,
    /// Number of distinct tokens in the corpus.
    pub vocab_size: usize,
}

impl CorpusArtifacts {
    /// Computes the artifacts over an object iterator — bit-identical
    /// to what [`ObjectStore::from_objects`] would compute over the
    /// same objects collected into a `Vec` (same space padding, same
    /// document-frequency weights, same order). The iterator is cloned
    /// for the two passes (space, then weights), so pass something
    /// cheap to clone — slices and chained slice iterators are.
    pub fn compute<'a, I>(objects: I, vocab_size: usize) -> Self
    where
        I: Iterator<Item = &'a RoiObject> + Clone,
    {
        let space = space_over(objects.clone().map(|o| &o.region));
        let weights = IdfWeights::from_corpus(vocab_size, objects.map(|o| o.tokens.ids()));
        let token_order = GlobalTokenOrder::by_descending_weight(vocab_size, &weights);
        CorpusArtifacts {
            space,
            weights,
            token_order,
            vocab_size,
        }
    }

    /// The artifacts `store` already carries, cloned (the sharded
    /// construction path: partition one built store, hand each shard
    /// the whole corpus's artifacts).
    pub fn of(store: &ObjectStore) -> Self {
        CorpusArtifacts {
            space: store.space,
            weights: store.weights.clone(),
            token_order: store.token_order.clone(),
            vocab_size: store.vocab_size,
        }
    }
}

/// The immutable object collection every index is built over.
///
/// Owns the objects plus the two corpus-level artifacts the paper's
/// filters need:
///
/// * [`IdfWeights`] — `w(t) = ln(|O| / count(t,O))` (Section 2.1);
/// * [`GlobalTokenOrder`] — tokens by descending idf, the global
///   signature-element order for textual prefix filtering (Section 4.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectStore {
    objects: Vec<RoiObject>,
    space: Rect,
    weights: IdfWeights,
    token_order: GlobalTokenOrder,
    vocab_size: usize,
    dictionary: Option<Dictionary>,
}

impl ObjectStore {
    /// Builds a store from objects whose token ids come from a space of
    /// `vocab_size` distinct tokens.
    pub fn from_objects(objects: Vec<RoiObject>, vocab_size: usize) -> Self {
        let space = compute_space(&objects);
        let weights = IdfWeights::from_corpus(vocab_size, objects.iter().map(|o| o.tokens.ids()));
        let token_order = GlobalTokenOrder::by_descending_weight(vocab_size, &weights);
        ObjectStore {
            objects,
            space,
            weights,
            token_order,
            vocab_size,
            dictionary: None,
        }
    }

    /// Builds a store over `objects` that carries **injected** corpus
    /// artifacts instead of computing its own — the shard-local store
    /// of a partitioned corpus. Filters built over it derive their
    /// bounds from the global weights/order/space, and verification
    /// judges similarity with the global weights, so the store answers
    /// exactly the global answers restricted to its objects (see
    /// [`CorpusArtifacts`]). No dictionary: token-string resolution is
    /// a corpus-level concern the sharding layer keeps for itself.
    pub fn with_artifacts(objects: Vec<RoiObject>, artifacts: CorpusArtifacts) -> Self {
        ObjectStore {
            objects,
            space: artifacts.space,
            weights: artifacts.weights,
            token_order: artifacts.token_order,
            vocab_size: artifacts.vocab_size,
            dictionary: None,
        }
    }

    /// The next generation of a shard-local store: same objects (ids
    /// stable) with `delta` appended, carrying freshly injected
    /// artifacts — the sharded counterpart of
    /// [`extended`](Self::extended), whose artifact *recomputation*
    /// over the local slice would be exactly wrong for a shard.
    pub fn extended_with_artifacts(&self, delta: &[RoiObject], artifacts: CorpusArtifacts) -> Self {
        let mut objects = Vec::with_capacity(self.objects.len() + delta.len());
        objects.extend_from_slice(&self.objects);
        objects.extend_from_slice(delta);
        ObjectStore::with_artifacts(objects, artifacts)
    }

    /// Builds the **next generation** of this store: the same objects
    /// (ids unchanged) with `delta` appended after them, and every
    /// corpus-level artifact — the space MBR, the idf weights, the
    /// global token order — recomputed over the union. The result is
    /// indistinguishable from [`ObjectStore::from_objects`] over the
    /// concatenated object list, which is what lets a generation swap
    /// serve answers identical to a from-scratch build.
    ///
    /// Delta objects receive the ids `self.len()..self.len() +
    /// delta.len()` in push order — the same ids a live engine's delta
    /// overlay advertises before the swap, so ids are stable across a
    /// refresh. Tokens unseen by this store grow the vocabulary; the
    /// dictionary (if any) is carried over unchanged, so ids beyond it
    /// simply have no string form yet.
    pub fn extended(&self, delta: &[RoiObject]) -> Self {
        let mut objects = Vec::with_capacity(self.objects.len() + delta.len());
        objects.extend_from_slice(&self.objects);
        objects.extend_from_slice(delta);
        let vocab = delta
            .iter()
            .flat_map(|o| o.tokens.iter())
            .map(|t| t.index() + 1)
            .max()
            .unwrap_or(0)
            .max(self.vocab_size);
        let mut next = ObjectStore::from_objects(objects, vocab);
        next.dictionary = self.dictionary.clone();
        next
    }

    /// Builds a store from `(region, tokens-as-strings)` pairs, interning
    /// the strings (the examples use this entry point).
    pub fn from_labeled<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = (Rect, Vec<S>)>,
        S: AsRef<str>,
    {
        let mut dict = Dictionary::new();
        let objects: Vec<RoiObject> = items
            .into_iter()
            .map(|(region, tokens)| {
                let ids = tokens.iter().map(|t| dict.intern(t.as_ref()));
                RoiObject::new(region, TokenSet::from_ids(ids))
            })
            .collect();
        let vocab = dict.len();
        let mut store = ObjectStore::from_objects(objects, vocab);
        store.dictionary = Some(dict);
        store
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object for an id.
    ///
    /// # Panics
    /// If the id is out of range (ids come from this store's indexes,
    /// so an out-of-range id is a logic error).
    #[inline]
    pub fn get(&self, id: ObjectId) -> &RoiObject {
        &self.objects[id.index()]
    }

    /// All objects in id order.
    #[inline]
    pub fn objects(&self) -> &[RoiObject] {
        &self.objects
    }

    /// Iterates `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &RoiObject)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), o))
    }

    /// The entire space `R` (MBR of all regions, padded to positive
    /// extent so grids are well-defined).
    #[inline]
    pub fn space(&self) -> Rect {
        self.space
    }

    /// The corpus idf weights.
    #[inline]
    pub fn weights(&self) -> &IdfWeights {
        &self.weights
    }

    /// The global token order (descending idf).
    #[inline]
    pub fn token_order(&self) -> &GlobalTokenOrder {
        &self.token_order
    }

    /// Number of distinct tokens the store was built with.
    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The dictionary, when the store was built from strings.
    pub fn dictionary(&self) -> Option<&Dictionary> {
        self.dictionary.as_ref()
    }

    /// Attaches a dictionary after construction — the container load
    /// path rebuilds the store from persisted objects via
    /// [`from_objects`](Self::from_objects) and then restores the
    /// persisted dictionary here.
    pub(crate) fn set_dictionary(&mut self, dictionary: Option<Dictionary>) {
        self.dictionary = dictionary;
    }

    /// Summary statistics (Table 1's data rows).
    pub fn stats(&self) -> StoreStats {
        let n = self.objects.len();
        let area_sum: f64 = self.objects.iter().map(|o| o.region.area()).sum();
        let token_sum: usize = self.objects.iter().map(|o| o.tokens.len()).sum();
        // Capacity-based, like the index-side size accounting: each
        // token set owns its Vec's whole allocation, so counting
        // payload by length undercounts live stores whose sets carry
        // staged capacity (e.g. built via sort-and-dedup).
        let token_bytes: usize = self.objects.iter().map(|o| o.tokens.heap_bytes()).sum();
        let data_bytes = n * std::mem::size_of::<Rect>() + token_bytes;
        StoreStats {
            objects: n,
            avg_region_area: if n == 0 { 0.0 } else { area_sum / n as f64 },
            space_area: self.space.area(),
            avg_token_count: if n == 0 {
                0.0
            } else {
                token_sum as f64 / n as f64
            },
            vocab_size: self.vocab_size,
            data_bytes,
        }
    }

    /// Total token weight of an object's set (used by signature bounds).
    #[inline]
    pub fn object_token_weight(&self, id: ObjectId) -> f64 {
        self.weights.set_weight(&self.get(id).tokens)
    }
}

/// MBR of all regions, padded to a non-degenerate rectangle so grid
/// partitions are always well-defined.
fn compute_space(objects: &[RoiObject]) -> Rect {
    space_over(objects.iter().map(|o| &o.region))
}

/// The iterator form of [`compute_space`] (shared with
/// [`CorpusArtifacts::compute`], which walks regions scattered across
/// shard snapshots without collecting them).
fn space_over<'a>(regions: impl Iterator<Item = &'a Rect>) -> Rect {
    let mbr = Rect::mbr_of(regions)
        .unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0).expect("static rect"));
    let pad_x = if mbr.width() <= 0.0 { 0.5 } else { 0.0 };
    let pad_y = if mbr.height() <= 0.0 { 0.5 } else { 0.0 };
    if pad_x > 0.0 || pad_y > 0.0 {
        Rect::new(
            mbr.min().x - pad_x,
            mbr.min().y - pad_y,
            mbr.max().x + pad_x,
            mbr.max().y + pad_y,
        )
        .expect("padded space is valid")
    } else {
        mbr
    }
}

/// Builds the store of the paper's running example (Figure 1): seven
/// objects `o1..o7` over a 120×120 space with tokens `t1..t5`.
///
/// Region coordinates are reconstructed from the figure's drawing; the
/// *published* quantities (token sets, idf weights within rounding, the
/// answer set of Example 1) are asserted in this crate's tests.
pub fn figure1_store() -> (ObjectStore, crate::Query) {
    use seal_text::TokenId;
    let t = |ids: &[u32]| TokenSet::from_ids(ids.iter().map(|&i| TokenId(i)));
    // Tokens: t1=0 (mocha), t2=1 (coffee), t3=2 (starbucks),
    //         t4=3 (ice), t5=4 (tea).
    let objects = vec![
        // o1: tall region on the upper left, tokens {t1,t2}.
        RoiObject::new(Rect::new(10.0, 60.0, 40.0, 120.0).unwrap(), t(&[0, 1])),
        // o2: large central region, tokens {t1,t2,t3}.
        RoiObject::new(Rect::new(15.0, 15.0, 85.0, 40.0).unwrap(), t(&[0, 1, 2])),
        // o3: right-side region, tokens {t3,t4,t5}.
        RoiObject::new(Rect::new(95.0, 50.0, 120.0, 90.0).unwrap(), t(&[2, 3, 4])),
        // o4: top-right region, tokens {t2,t3,t5}.
        RoiObject::new(Rect::new(85.0, 95.0, 115.0, 120.0).unwrap(), t(&[1, 2, 4])),
        // o5: small region left-center, tokens {t1,t2,t5}.
        RoiObject::new(Rect::new(45.0, 50.0, 60.0, 70.0).unwrap(), t(&[0, 1, 4])),
        // o6: bottom-right region, tokens {t2,t4}.
        RoiObject::new(Rect::new(90.0, 0.0, 120.0, 20.0).unwrap(), t(&[1, 3])),
        // o7: bottom-left region, tokens {t5}.
        RoiObject::new(Rect::new(0.0, 0.0, 25.0, 10.0).unwrap(), t(&[4])),
    ];
    let store = ObjectStore::from_objects(objects, 5);
    // Query overlapping o2 strongly and o1 weakly, asking for
    // {t1,t2,t3} with τR=0.25, τT=0.3 (Example 1).
    let q = crate::Query::with_token_ids(
        Rect::new(20.0, 10.0, 70.0, 45.0).unwrap(),
        [TokenId(0), TokenId(1), TokenId(2)],
        0.25,
        0.3,
    )
    .expect("valid thresholds");
    (store, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seal_text::TokenId;

    #[test]
    fn from_objects_computes_space_and_weights() {
        let (store, _q) = figure1_store();
        assert_eq!(store.len(), 7);
        assert!(store.space().area() > 0.0);
        // t4 (=TokenId 3) appears in 2 of 7 objects: w = ln(7/2) ≈ 1.25
        // (the paper's published 1.3 after rounding).
        let w = store.weights().weight(TokenId(3));
        assert!((w - (7.0f64 / 2.0).ln()).abs() < 1e-12);
        // t2 (=TokenId 1) appears in 5 of 7: w = ln(7/5) ≈ 0.34 (paper: 0.3).
        let w = store.weights().weight(TokenId(1));
        assert!((w - (7.0f64 / 5.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn idf_ranks_match_paper() {
        // The paper's idf ordering: t4 > t1 = t3 > t5 > t2.
        let (store, _q) = figure1_store();
        let w = store.weights();
        let weight = |i: u32| w.weight(TokenId(i));
        assert!(weight(3) > weight(0));
        assert!((weight(0) - weight(2)).abs() < 1e-12);
        assert!(weight(2) > weight(4));
        assert!(weight(4) > weight(1));
    }

    #[test]
    fn from_labeled_interns_strings() {
        let store = ObjectStore::from_labeled(vec![
            (
                Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
                vec!["coffee", "mocha"],
            ),
            (
                Rect::new(1.0, 1.0, 2.0, 2.0).unwrap(),
                vec!["coffee", "tea"],
            ),
        ]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.vocab_size(), 3);
        let dict = store.dictionary().unwrap();
        let coffee = dict.get("coffee").unwrap();
        // "coffee" in both objects: weight ln(2/2) = 0.
        assert_eq!(store.weights().weight(coffee), 0.0);
        let tea = dict.get("tea").unwrap();
        assert!((store.weights().weight(tea) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_store_is_safe() {
        let store = ObjectStore::from_objects(Vec::new(), 0);
        assert!(store.is_empty());
        assert!(store.space().area() > 0.0, "space padded to positive area");
        let s = store.stats();
        assert_eq!(s.objects, 0);
        assert_eq!(s.avg_region_area, 0.0);
    }

    #[test]
    fn degenerate_only_store_pads_space() {
        let p = Rect::new(5.0, 5.0, 5.0, 5.0).unwrap();
        let store =
            ObjectStore::from_objects(vec![RoiObject::new(p, TokenSet::from_ids([TokenId(0)]))], 1);
        assert!(store.space().area() > 0.0);
        assert!(store.space().contains_rect(&p));
    }

    #[test]
    fn stats_reflect_contents() {
        let (store, _q) = figure1_store();
        let s = store.stats();
        assert_eq!(s.objects, 7);
        assert_eq!(s.vocab_size, 5);
        // Token counts: 2+3+3+3+3+2+1 = 17 → avg 17/7.
        assert!((s.avg_token_count - 17.0 / 7.0).abs() < 1e-12);
        assert!(s.data_bytes > 0);
        assert!(s.space_area >= s.avg_region_area);
    }

    #[test]
    fn extended_store_equals_fresh_union_build() {
        let (store, _q) = figure1_store();
        let delta = vec![
            // Reuses existing tokens and adds a brand-new one (id 5),
            // growing the vocabulary.
            RoiObject::new(
                Rect::new(50.0, 50.0, 70.0, 70.0).unwrap(),
                TokenSet::from_ids([TokenId(0), TokenId(5)]),
            ),
            RoiObject::new(
                Rect::new(-10.0, 0.0, 5.0, 5.0).unwrap(), // extends the space MBR
                TokenSet::from_ids([TokenId(1)]),
            ),
        ];
        let next = store.extended(&delta);
        let mut union: Vec<RoiObject> = store.objects().to_vec();
        union.extend_from_slice(&delta);
        let fresh = ObjectStore::from_objects(union, 6);

        assert_eq!(next.len(), fresh.len());
        assert_eq!(next.vocab_size(), fresh.vocab_size());
        assert_eq!(next.space(), fresh.space(), "space MBR recomputed");
        for t in 0..6u32 {
            assert_eq!(
                next.weights().weight(TokenId(t)),
                fresh.weights().weight(TokenId(t)),
                "idf weight of t{t} diverged"
            );
            assert_eq!(
                next.token_order().rank(TokenId(t)),
                fresh.token_order().rank(TokenId(t)),
                "global order of t{t} diverged"
            );
        }
        // Existing ids unchanged; delta ids appended in push order.
        assert_eq!(next.get(ObjectId(1)), store.get(ObjectId(1)));
        assert_eq!(next.get(ObjectId(7)), &delta[0]);
        assert_eq!(next.get(ObjectId(8)), &delta[1]);
    }

    #[test]
    fn extended_with_empty_delta_preserves_everything() {
        let (store, _q) = figure1_store();
        let next = store.extended(&[]);
        assert_eq!(next.len(), store.len());
        assert_eq!(next.vocab_size(), store.vocab_size());
        assert_eq!(next.space(), store.space());
        let w = store.weights().weight(TokenId(3));
        assert_eq!(next.weights().weight(TokenId(3)), w);
    }

    #[test]
    fn data_bytes_covers_token_capacity() {
        // A token set built from a duplicate-heavy list keeps the
        // pre-dedup capacity; data_bytes must cover the allocation,
        // not just the surviving length.
        let dup_heavy: Vec<TokenId> = (0..64).map(|i| TokenId(i % 4)).collect();
        let o = RoiObject::new(
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            TokenSet::from_ids(dup_heavy),
        );
        let token_alloc = o.tokens.heap_bytes();
        assert!(
            token_alloc > o.tokens.len() * std::mem::size_of::<TokenId>(),
            "fixture must carry staged capacity"
        );
        let store = ObjectStore::from_objects(vec![o], 4);
        let s = store.stats();
        assert!(
            s.data_bytes >= std::mem::size_of::<Rect>() + token_alloc,
            "data_bytes {} undercounts the token allocation {token_alloc}",
            s.data_bytes
        );
    }

    #[test]
    fn computed_artifacts_match_from_objects() {
        let (store, _q) = figure1_store();
        let arts = CorpusArtifacts::compute(store.objects().iter(), store.vocab_size());
        assert_eq!(arts.space, store.space());
        assert_eq!(arts.vocab_size, store.vocab_size());
        for t in 0..5u32 {
            assert_eq!(
                arts.weights.weight(TokenId(t)),
                store.weights().weight(TokenId(t))
            );
            assert_eq!(
                arts.token_order.rank(TokenId(t)),
                store.token_order().rank(TokenId(t))
            );
        }
        // Degenerate corpora pad the space exactly like from_objects.
        let empty = CorpusArtifacts::compute([].iter(), 0);
        assert_eq!(
            empty.space,
            ObjectStore::from_objects(Vec::new(), 0).space()
        );
    }

    #[test]
    fn injected_artifacts_override_local_computation() {
        let (global, _q) = figure1_store();
        let arts = CorpusArtifacts::of(&global);
        // A one-object slice of the corpus: its locally computed idf
        // would be degenerate (every token weight ln(1/1)=0), but the
        // injected artifacts keep the global values.
        let slice = vec![global.objects()[2].clone()];
        let shard = ObjectStore::with_artifacts(slice.clone(), arts.clone());
        assert_eq!(shard.len(), 1);
        assert_eq!(shard.space(), global.space());
        assert_eq!(shard.vocab_size(), global.vocab_size());
        for t in 0..5u32 {
            assert_eq!(
                shard.weights().weight(TokenId(t)),
                global.weights().weight(TokenId(t))
            );
        }
        let local = ObjectStore::from_objects(slice, global.vocab_size());
        assert_ne!(
            local.weights().weight(TokenId(3)),
            shard.weights().weight(TokenId(3)),
            "fixture must actually distinguish local from injected weights"
        );
        // extended_with_artifacts appends with stable ids and swaps in
        // the new epoch's artifacts.
        let delta = vec![global.objects()[0].clone()];
        let next_arts = CorpusArtifacts::compute(
            shard.objects().iter().chain(delta.iter()),
            global.vocab_size(),
        );
        let next = shard.extended_with_artifacts(&delta, next_arts);
        assert_eq!(next.len(), 2);
        assert_eq!(next.get(ObjectId(0)), shard.get(ObjectId(0)));
        assert_eq!(next.get(ObjectId(1)), &delta[0]);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let (store, _q) = figure1_store();
        let ids: Vec<u32> = store.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }
}
