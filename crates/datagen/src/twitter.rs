//! The Twitter-like dataset generator.
//!
//! Properties reproduced from the paper's Section 6.1 description:
//!
//! * 1M user ROIs (scaled by `count`), average region area ≈ 115 km²,
//!   entire space ≈ 1342 million km².
//! * Published region-size quantiles: ≤0.0001 km²: 4.4%, ≤0.01: 15.4%,
//!   ≤1: 29.7%, ≤100: 73% — we sample areas from a piecewise
//!   log-uniform distribution fitted to those break-points, with the
//!   top segment's upper bound (1000 km²) chosen so the mean lands at
//!   ≈115 km².
//! * Users cluster spatially (tweets concentrate in cities) — centres
//!   are drawn from Gaussian population clusters whose weights are
//!   Zipf-distributed, so some grid cells carry very long inverted
//!   lists, exactly the skew the threshold-aware pruning exploits.
//! * Token sets: average 14.3 tokens, global Zipf frequencies with
//!   per-cluster topic locality (users in one city share local terms).

use crate::{Dataset, RawObject, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seal_geom::Rect;
use seal_text::TokenId;

/// Tuning knobs for the Twitter-like generator.
#[derive(Debug, Clone)]
pub struct TwitterParams {
    /// Number of objects.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Side of the (square) data space in km. The paper's space is
    /// ~1342 million km² → side ≈ 36,633 km.
    pub space_km: f64,
    /// Number of population clusters. `0` (the default) means
    /// *auto-scale with `count`* so per-cluster density matches the
    /// paper's 1M-object dataset (~5000 users per city): the filters'
    /// workload is driven by how many ROIs pile up in one place, and
    /// that must not dilute when the benchmark runs at reduced scale.
    pub clusters: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Mean tokens per object (paper: 14.3).
    pub mean_tokens: f64,
    /// Fraction of users generated as *echoes* of an earlier user:
    /// near-identical region (±10% jitter) and mostly-shared token set.
    /// Real Twitter profiles cluster this way (users of one city share
    /// the city MBR and its vocabulary), and it is what makes the
    /// paper's profile-anchored queries have non-empty answers at
    /// τ = 0.4.
    pub echo_fraction: f64,
}

impl Default for TwitterParams {
    fn default() -> Self {
        TwitterParams {
            count: 100_000,
            seed: TwitterParams::DEFAULT_SEED,
            space_km: 36_633.0,
            clusters: 0,
            vocab: 50_000,
            mean_tokens: 14.3,
            echo_fraction: 0.25,
        }
    }
}

impl TwitterParams {
    /// The effective cluster count (resolves the auto-scale default).
    pub fn effective_clusters(&self) -> usize {
        if self.clusters > 0 {
            self.clusters
        } else {
            (self.count / 5_000).clamp(10, 400)
        }
    }
}

/// Base seed shared by the generators (an arbitrary recognizable
/// constant).
const SEAL_BASE_SEED: u64 = 0x5EA1_2012;

/// The paper's region-area quantile table, as (upper-bound km²,
/// cumulative fraction) break-points, extended by the fitted 1000 km²
/// maximum.
const AREA_BREAKPOINTS: &[(f64, f64)] = &[
    (1e-6, 0.0),
    (1e-4, 0.044),
    (1e-2, 0.154),
    (1.0, 0.297),
    (100.0, 0.73),
    (1000.0, 1.0),
];

/// Samples a region area (km²) from the piecewise log-uniform fit.
fn sample_area<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    for w in AREA_BREAKPOINTS.windows(2) {
        let (lo, clo) = w[0];
        let (hi, chi) = w[1];
        if u <= chi {
            let t = (u - clo) / (chi - clo);
            return lo * (hi / lo).powf(t);
        }
    }
    AREA_BREAKPOINTS.last().expect("non-empty table").0
}

struct Cluster {
    cx: f64,
    cy: f64,
    sigma: f64,
    topic_base: u32,
}

/// Generates the Twitter-like dataset.
pub fn twitter_like(params: &TwitterParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let side = params.space_km;
    let clusters: Vec<Cluster> = (0..params.effective_clusters().max(1))
        .map(|i| Cluster {
            cx: rng.gen::<f64>() * side,
            cy: rng.gen::<f64>() * side,
            sigma: 10.0 + rng.gen::<f64>() * 60.0,
            topic_base: (i as u32 * 37) % params.vocab.max(1) as u32,
        })
        .collect();
    let cluster_pick = Zipf::new(clusters.len(), 1.0);
    let token_zipf = Zipf::new(params.vocab.max(1), 1.0);
    let local_span = 500u32.min(params.vocab.max(1) as u32);

    let mut objects: Vec<RawObject> = Vec::with_capacity(params.count);
    for _ in 0..params.count {
        // Echo users: copy an earlier profile with light jitter.
        if !objects.is_empty() && rng.gen::<f64>() < params.echo_fraction {
            let src = objects[rng.gen_range(0..objects.len())].clone();
            objects.push(echo_of(&src, &token_zipf, &mut rng, side));
            continue;
        }
        let c = &clusters[cluster_pick.sample(&mut rng)];
        // Box–Muller Gaussian offsets around the cluster centre.
        let (g1, g2) = gaussian_pair(&mut rng);
        let cx = (c.cx + g1 * c.sigma).clamp(0.0, side);
        let cy = (c.cy + g2 * c.sigma).clamp(0.0, side);
        let area = sample_area(&mut rng);
        // Log-uniform aspect ratio in [1/4, 4].
        let aspect = 0.25 * 16.0f64.powf(rng.gen::<f64>());
        let w = (area * aspect).sqrt().min(side);
        let h = (area / aspect).sqrt().min(side);
        let x0 = (cx - w / 2.0).clamp(0.0, side - w);
        let y0 = (cy - h / 2.0).clamp(0.0, side - h);
        let region = Rect::new(x0, y0, x0 + w, y0 + h).expect("generated rect is valid");

        // Token count: geometric-ish around the mean, at least 1.
        let n_tokens = sample_count(&mut rng, params.mean_tokens);
        let mut tokens = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            let id = if rng.gen::<f64>() < 0.7 {
                token_zipf.sample(&mut rng) as u32
            } else {
                // Topic locality: a contiguous local vocabulary window.
                (c.topic_base + rng.gen_range(0..local_span)) % params.vocab.max(1) as u32
            };
            tokens.push(TokenId(id));
        }
        objects.push(RawObject { region, tokens });
    }
    Dataset {
        objects,
        vocab_size: params.vocab,
        name: "twitter-like",
    }
}

/// An echo of an existing profile: region corners jittered by up to
/// ±10% of the source's extents, ~80% of the source's tokens kept, plus
/// a couple of fresh corpus draws.
fn echo_of<R: Rng + ?Sized>(
    src: &RawObject,
    token_zipf: &Zipf,
    rng: &mut R,
    side: f64,
) -> RawObject {
    let w = src.region.width().max(1e-4);
    let h = src.region.height().max(1e-4);
    let jit = |rng: &mut R, extent: f64| (rng.gen::<f64>() - 0.5) * 0.2 * extent;
    let x0 = (src.region.min().x + jit(rng, w)).clamp(0.0, side);
    let y0 = (src.region.min().y + jit(rng, h)).clamp(0.0, side);
    let x1 = (src.region.max().x + jit(rng, w)).clamp(0.0, side);
    let y1 = (src.region.max().y + jit(rng, h)).clamp(0.0, side);
    let region =
        Rect::new(x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1)).expect("jittered rect is valid");
    let mut tokens: Vec<TokenId> = src
        .tokens
        .iter()
        .copied()
        .filter(|_| rng.gen::<f64>() < 0.8)
        .collect();
    for _ in 0..2 {
        tokens.push(TokenId(token_zipf.sample(rng) as u32));
    }
    RawObject { region, tokens }
}

/// A pair of independent standard Gaussians (Box–Muller).
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f64::consts::PI * u2;
    (r * th.cos(), r * th.sin())
}

/// Token-count sampler: 1 + Binomial-ish spread around `mean`.
fn sample_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let lo = (mean * 0.4).max(1.0);
    let hi = mean * 1.6;
    (lo + rng.gen::<f64>() * (hi - lo)).round() as usize
}

impl TwitterParams {
    /// The default seed.
    pub const DEFAULT_SEED: u64 = SEAL_BASE_SEED ^ 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwitterParams {
        TwitterParams {
            count: 5_000,
            seed: 42,
            ..TwitterParams::default()
        }
    }

    #[test]
    fn determinism() {
        let a = twitter_like(&small());
        let b = twitter_like(&small());
        assert_eq!(a.objects, b.objects);
    }

    #[test]
    fn area_quantiles_match_paper() {
        let d = twitter_like(&TwitterParams {
            count: 40_000,
            seed: 7,
            ..TwitterParams::default()
        });
        let mut areas: Vec<f64> = d.objects.iter().map(|o| o.region.area()).collect();
        areas.sort_by(f64::total_cmp);
        let frac_leq = |x: f64| areas.partition_point(|&a| a <= x) as f64 / areas.len() as f64;
        assert!((frac_leq(1e-4) - 0.044).abs() < 0.01, "{}", frac_leq(1e-4));
        assert!((frac_leq(1e-2) - 0.154).abs() < 0.015, "{}", frac_leq(1e-2));
        assert!((frac_leq(1.0) - 0.297).abs() < 0.02, "{}", frac_leq(1.0));
        assert!((frac_leq(100.0) - 0.73).abs() < 0.02, "{}", frac_leq(100.0));
    }

    #[test]
    fn mean_area_is_near_115() {
        let d = twitter_like(&TwitterParams {
            count: 60_000,
            seed: 3,
            ..TwitterParams::default()
        });
        let mean = d.avg_region_area();
        assert!((70.0..170.0).contains(&mean), "mean area {mean}");
    }

    #[test]
    fn token_counts_near_mean() {
        let d = twitter_like(&small());
        let avg = d.avg_token_count();
        assert!((11.0..18.0).contains(&avg), "avg tokens {avg}");
        assert!(d.objects.iter().all(|o| !o.tokens.is_empty()));
    }

    #[test]
    fn regions_inside_space() {
        let p = small();
        let d = twitter_like(&p);
        let space = Rect::new(0.0, 0.0, p.space_km, p.space_km).unwrap();
        for o in &d.objects {
            assert!(space.contains_rect(&o.region));
        }
    }

    #[test]
    fn token_frequencies_are_skewed() {
        let d = twitter_like(&small());
        let mut counts = vec![0u32; 50_000];
        for o in &d.objects {
            for t in &o.tokens {
                counts[t.0 as usize] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf skew: the top token is much more frequent than rank 100.
        assert!(counts[0] > 4 * counts[100].max(1));
    }

    #[test]
    fn echoes_create_genuinely_similar_pairs() {
        use seal_geom::SpatialSim;
        let d = twitter_like(&TwitterParams {
            count: 4_000,
            seed: 21,
            ..TwitterParams::default()
        });
        // There must exist pairs with spatial Jaccard ≥ 0.5 — the
        // cohort structure that gives τ=0.4 queries non-empty answers.
        let mut found = 0;
        'outer: for (i, a) in d.objects.iter().enumerate() {
            for b in d.objects.iter().skip(i + 1).take(400) {
                if a.region.jaccard(&b.region) >= 0.5 {
                    found += 1;
                    if found >= 5 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(found >= 5, "only {found} similar pairs found");
    }

    #[test]
    fn zero_echo_fraction_disables_echoes() {
        let d = twitter_like(&TwitterParams {
            count: 1_000,
            seed: 3,
            echo_fraction: 0.0,
            ..TwitterParams::default()
        });
        assert_eq!(d.objects.len(), 1_000);
    }

    #[test]
    fn cluster_autoscaling() {
        let small = TwitterParams {
            count: 20_000,
            ..TwitterParams::default()
        };
        let paper = TwitterParams {
            count: 1_000_000,
            ..TwitterParams::default()
        };
        assert_eq!(small.effective_clusters(), 10);
        assert_eq!(paper.effective_clusters(), 200, "paper scale → 200 cities");
        let manual = TwitterParams {
            clusters: 77,
            ..TwitterParams::default()
        };
        assert_eq!(manual.effective_clusters(), 77);
    }

    #[test]
    fn spatial_clustering_present() {
        // Compare object density in the busiest 1/64 of space to the
        // average: clustered data must be far above uniform.
        let p = small();
        let d = twitter_like(&p);
        let mut counts = vec![0u32; 64];
        let cell = p.space_km / 8.0;
        for o in &d.objects {
            let c = o.region.center();
            let ix = ((c.x / cell) as usize).min(7);
            let iy = ((c.y / cell) as usize).min(7);
            counts[iy * 8 + ix] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let avg = d.objects.len() as f64 / 64.0;
        assert!(max > 2.0 * avg, "no clustering: max {max} vs avg {avg}");
    }
}
