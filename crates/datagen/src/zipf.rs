//! A Zipf-distributed sampler (tokens in real tag corpora are
//! Zipf-like, which is what makes idf ordering and prefix filtering
//! effective — the generators must preserve that shape).

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank+1)^s`, via a precomputed CDF and binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP drift on the final bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ranks_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[100]);
        // Rank 0 of a 1000-rank Zipf(1.0) has probability
        // 1/H(1000) ≈ 0.134; allow generous slack.
        let p0 = f64::from(counts[0]) / 100_000.0;
        assert!((0.10..=0.17).contains(&p0), "p0 = {p0}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = f64::from(c) / 100_000.0;
            assert!((0.08..=0.12).contains(&p), "non-uniform at s=0: {p}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
