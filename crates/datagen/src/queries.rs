//! Query workload generators (Section 6.1).
//!
//! Two workloads, generated *from* a dataset so that queries overlap
//! real objects (the paper notes that even small query regions overlap
//! ~8000 ROIs on Twitter):
//!
//! * **Large-region queries** — avg area 554 km² ("a district"), avg
//!   6.97 tokens.
//! * **Small-region queries** — avg area 0.44 km² ("a small
//!   neighbourhood"), avg 12.9 tokens.
//!
//! Query regions are centred on (jittered) data-object centres so they
//! land where data lives; query tokens are sampled mostly from the
//! anchor object's tokens plus a few corpus draws, so textual
//! similarities are non-trivial.

use crate::{Dataset, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seal_geom::Rect;
use seal_text::TokenId;

/// Which of the paper's two workloads to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpec {
    /// Avg 554 km² regions, ~7 tokens.
    LargeRegion,
    /// Avg 0.44 km² regions, ~13 tokens.
    SmallRegion,
}

impl QuerySpec {
    /// Log-uniform area range (km²) for this workload.
    fn area_range(self) -> (f64, f64) {
        match self {
            // Log-uniform on [100, 2000]: mean ≈ 634; with the clamp to
            // the space this lands near the paper's 554 km² average.
            QuerySpec::LargeRegion => (100.0, 2000.0),
            // Log-uniform on [0.05, 2.0]: mean ≈ 0.53 km².
            QuerySpec::SmallRegion => (0.05, 2.0),
        }
    }

    /// Mean token count for this workload.
    fn mean_tokens(self) -> f64 {
        match self {
            QuerySpec::LargeRegion => 6.97,
            QuerySpec::SmallRegion => 12.9,
        }
    }
}

/// Parameters for query generation.
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// Which workload shape.
    pub spec: QuerySpec,
    /// Number of queries (the paper uses 100 per set).
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QueryParams {
    /// The paper's 100-query workload.
    pub fn paper(spec: QuerySpec, seed: u64) -> Self {
        QueryParams {
            spec,
            count: 100,
            seed,
        }
    }
}

/// A generated query (region + tokens); thresholds are applied by the
/// caller, since the benchmarks sweep them.
#[derive(Debug, Clone, PartialEq)]
pub struct RawQuery {
    /// The query region.
    pub region: Rect,
    /// The query token ids.
    pub tokens: Vec<TokenId>,
}

/// Generates a query workload anchored on a dataset's objects.
///
/// # Panics
/// If the dataset is empty.
pub fn generate(dataset: &Dataset, params: &QueryParams) -> Vec<RawQuery> {
    assert!(
        !dataset.objects.is_empty(),
        "cannot anchor queries on an empty dataset"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let space = seal_geom::Rect::mbr_of(dataset.objects.iter().map(|o| &o.region))
        .expect("non-empty dataset");
    let (alo, ahi) = params.spec.area_range();
    let corpus_zipf = Zipf::new(dataset.vocab_size.max(1), 1.0);

    (0..params.count)
        .map(|_| {
            let anchor = &dataset.objects[rng.gen_range(0..dataset.objects.len())];
            // Queries are user profiles (the paper's marketing / friend
            // use cases), so when the anchor's own region fits the
            // workload's size band, the query region is the anchor's
            // region with light jitter; otherwise sample a fresh region
            // of workload-appropriate area around the anchor.
            let anchor_area = anchor.region.area();
            let region = if (alo..=ahi).contains(&anchor_area) {
                let jw = anchor.region.width() * 0.1;
                let jh = anchor.region.height() * 0.1;
                let x0 = anchor.region.min().x + (rng.gen::<f64>() - 0.5) * jw;
                let y0 = anchor.region.min().y + (rng.gen::<f64>() - 0.5) * jh;
                let x1 = anchor.region.max().x + (rng.gen::<f64>() - 0.5) * jw;
                let y1 = anchor.region.max().y + (rng.gen::<f64>() - 0.5) * jh;
                Rect::new(
                    x0.min(x1).max(space.min().x),
                    y0.min(y1).max(space.min().y),
                    x1.max(x0).min(space.max().x),
                    y1.max(y0).min(space.max().y),
                )
                .expect("valid query rect")
            } else {
                let c = anchor.region.center();
                let jx = (rng.gen::<f64>() - 0.5) * anchor.region.width().max(1.0);
                let jy = (rng.gen::<f64>() - 0.5) * anchor.region.height().max(1.0);
                let area = alo * (ahi / alo).powf(rng.gen::<f64>());
                let aspect = 0.5 * 4.0f64.powf(rng.gen::<f64>());
                let w = (area * aspect).sqrt();
                let h = (area / aspect).sqrt();
                let cx = (c.x + jx).clamp(space.min().x, space.max().x);
                let cy = (c.y + jy).clamp(space.min().y, space.max().y);
                let x0 = (cx - w / 2.0).max(space.min().x);
                let y0 = (cy - h / 2.0).max(space.min().y);
                let x1 = (x0 + w).min(space.max().x);
                let y1 = (y0 + h).min(space.max().y);
                Rect::new(x0, y0, x1.max(x0), y1.max(y0)).expect("valid query rect")
            };

            let n = sample_count(&mut rng, params.spec.mean_tokens());
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                if !anchor.tokens.is_empty() && rng.gen::<f64>() < 0.75 {
                    tokens.push(anchor.tokens[rng.gen_range(0..anchor.tokens.len())]);
                } else {
                    tokens.push(TokenId(corpus_zipf.sample(&mut rng) as u32));
                }
            }
            RawQuery { region, tokens }
        })
        .collect()
}

fn sample_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let lo = (mean * 0.5).max(1.0);
    let hi = mean * 1.5;
    (lo + rng.gen::<f64>() * (hi - lo)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{twitter_like, TwitterParams};

    fn dataset() -> Dataset {
        twitter_like(&TwitterParams {
            count: 3_000,
            seed: 9,
            ..TwitterParams::default()
        })
    }

    #[test]
    fn large_queries_have_large_areas() {
        let d = dataset();
        let qs = generate(&d, &QueryParams::paper(QuerySpec::LargeRegion, 1));
        assert_eq!(qs.len(), 100);
        let mean = qs.iter().map(|q| q.region.area()).sum::<f64>() / qs.len() as f64;
        assert!((100.0..2000.0).contains(&mean), "mean area {mean}");
    }

    #[test]
    fn small_queries_have_small_areas_more_tokens() {
        let d = dataset();
        let large = generate(&d, &QueryParams::paper(QuerySpec::LargeRegion, 1));
        let small = generate(&d, &QueryParams::paper(QuerySpec::SmallRegion, 1));
        let mean_area = small.iter().map(|q| q.region.area()).sum::<f64>() / small.len() as f64;
        assert!(mean_area < 3.0, "small-region mean area {mean_area}");
        let large_tokens =
            large.iter().map(|q| q.tokens.len()).sum::<usize>() as f64 / large.len() as f64;
        let small_tokens =
            small.iter().map(|q| q.tokens.len()).sum::<usize>() as f64 / small.len() as f64;
        assert!(
            small_tokens > large_tokens,
            "{small_tokens} vs {large_tokens}"
        );
    }

    #[test]
    fn queries_are_deterministic() {
        let d = dataset();
        let a = generate(&d, &QueryParams::paper(QuerySpec::LargeRegion, 5));
        let b = generate(&d, &QueryParams::paper(QuerySpec::LargeRegion, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn queries_overlap_data() {
        // The whole point of anchoring: most queries intersect at least
        // one object.
        let d = dataset();
        let qs = generate(&d, &QueryParams::paper(QuerySpec::LargeRegion, 2));
        let overlapping = qs
            .iter()
            .filter(|q| d.objects.iter().any(|o| o.region.intersects(&q.region)))
            .count();
        assert!(
            overlapping >= 95,
            "only {overlapping}/100 queries touch data"
        );
    }

    #[test]
    fn tokens_are_nonempty_and_in_vocab() {
        let d = dataset();
        for spec in [QuerySpec::LargeRegion, QuerySpec::SmallRegion] {
            for q in generate(&d, &QueryParams::paper(spec, 3)) {
                assert!(!q.tokens.is_empty());
                assert!(q.tokens.iter().all(|t| (t.0 as usize) < d.vocab_size));
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset {
            objects: vec![],
            vocab_size: 10,
            name: "empty",
        };
        let _ = generate(&d, &QueryParams::paper(QuerySpec::LargeRegion, 1));
    }
}
