//! # seal-datagen — synthetic workloads for the SEAL experiments
//!
//! The paper evaluates on two datasets we cannot redistribute:
//!
//! * **Twitter** — 1M user ROIs mined from 13M geotagged tweets:
//!   per-user active regions (MBRs of their tweets, avg 115 km², with a
//!   published heavy-tailed size distribution) and frequent-word token
//!   sets (avg 14.3 tokens).
//! * **USA** — 1M POI-centred regions (random extents, avg ~5 km²)
//!   with DBLP publication records as token sets (avg 12.5 tokens).
//!
//! This crate builds the closest synthetic equivalents (see DESIGN.md §4
//! for the substitution argument): spatially clustered regions whose
//! area distribution is fitted to the paper's published quantiles, and
//! Zipf-distributed token sets with topic locality. It also generates
//! the paper's two query workloads (large-region / small-region).
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
mod queries;
mod twitter;
mod usa;
mod zipf;

pub use queries::{generate as generate_queries, QueryParams, QuerySpec, RawQuery};
pub use twitter::{twitter_like, TwitterParams};
pub use usa::{usa_like, UsaParams};
pub use zipf::Zipf;

use seal_geom::Rect;
use seal_text::TokenId;

/// A raw generated object: a region plus token ids. `seal-core` turns a
/// batch of these into an `ObjectStore` (this crate deliberately does
/// not depend on `seal-core`, so `seal-core`'s tests can depend on it).
#[derive(Debug, Clone, PartialEq)]
pub struct RawObject {
    /// The object's MBR.
    pub region: Rect,
    /// The object's token ids (may contain duplicates; the store
    /// deduplicates).
    pub tokens: Vec<TokenId>,
}

/// A generated dataset: objects plus the vocabulary size they draw
/// from.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generated objects.
    pub objects: Vec<RawObject>,
    /// Number of distinct token ids used.
    pub vocab_size: usize,
    /// Human-readable name ("twitter-like" / "usa-like").
    pub name: &'static str,
}

impl Dataset {
    /// Average region area (diagnostic; compare to the paper's 115 /
    /// 5.4 km² after scaling).
    pub fn avg_region_area(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(|o| o.region.area()).sum::<f64>() / self.objects.len() as f64
    }

    /// Average token count per object.
    pub fn avg_token_count(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(|o| o.tokens.len()).sum::<usize>() as f64
            / self.objects.len() as f64
    }
}
