//! Plain-text dataset import/export.
//!
//! A release-quality reproduction should let users bring their own ROI
//! data. The format is one object per line, tab-separated:
//!
//! ```text
//! min_x <TAB> min_y <TAB> max_x <TAB> max_y <TAB> token,token,token
//! ```
//!
//! Tokens are comma-separated free text (no tabs/newlines); numeric
//! fields are `f64`. Lines starting with `#` and blank lines are
//! skipped. This is the interchange format the `seal-cli` tool reads
//! and writes.

use crate::{Dataset, RawObject};
use seal_geom::Rect;
use seal_text::TokenId;
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while parsing the TSV format.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (wrong field count, bad number, inverted rect).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a TSV dataset, interning token strings to dense ids. Returns
/// the dataset plus the `id → string` table (index = token id).
pub fn read_tsv<R: BufRead>(reader: R) -> Result<(Dataset, Vec<String>), IoError> {
    let mut by_name: HashMap<String, TokenId> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut objects = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        // Skip decisions use the fully-trimmed view, but field splitting
        // must keep trailing tabs (an empty token field is legal).
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let content = line.trim_end_matches(['\r', '\n']);
        let fields: Vec<&str> = content.split('\t').collect();
        if fields.len() != 5 {
            return Err(IoError::Parse {
                line: lineno,
                reason: format!("expected 5 tab-separated fields, got {}", fields.len()),
            });
        }
        let mut nums = [0.0f64; 4];
        for (k, f) in fields[..4].iter().enumerate() {
            nums[k] = f.trim().parse().map_err(|e| IoError::Parse {
                line: lineno,
                reason: format!("bad number {f:?}: {e}"),
            })?;
        }
        let region = Rect::new(nums[0], nums[1], nums[2], nums[3]).map_err(|e| IoError::Parse {
            line: lineno,
            reason: format!("bad rectangle: {e}"),
        })?;
        let tokens: Vec<TokenId> = fields[4]
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| {
                *by_name.entry(t.to_string()).or_insert_with(|| {
                    let id = TokenId(names.len() as u32);
                    names.push(t.to_string());
                    id
                })
            })
            .collect();
        objects.push(RawObject { region, tokens });
    }
    let vocab_size = names.len();
    Ok((
        Dataset {
            objects,
            vocab_size,
            name: "imported",
        },
        names,
    ))
}

/// Writes a dataset in the TSV format, mapping token ids to strings via
/// `names` (ids without a name are written as `t<id>`).
pub fn write_tsv<W: Write>(
    writer: &mut W,
    dataset: &Dataset,
    names: &[String],
) -> std::io::Result<()> {
    for o in &dataset.objects {
        let toks: Vec<String> = o
            .tokens
            .iter()
            .map(|t| {
                names
                    .get(t.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("t{}", t.0))
            })
            .collect();
        writeln!(
            writer,
            "{}\t{}\t{}\t{}\t{}",
            o.region.min().x,
            o.region.min().y,
            o.region.max().x,
            o.region.max().y,
            toks.join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
# comment line
0\t0\t40\t40\tcoffee,mocha

10\t10\t50\t50\tcoffee,starbucks
";

    #[test]
    fn read_parses_objects_and_interns_tokens() {
        let (d, names) = read_tsv(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(d.objects.len(), 2);
        assert_eq!(d.vocab_size, 3);
        assert_eq!(names, vec!["coffee", "mocha", "starbucks"]);
        assert_eq!(d.objects[0].region.area(), 1600.0);
        assert_eq!(d.objects[0].tokens, vec![TokenId(0), TokenId(1)]);
        assert_eq!(d.objects[1].tokens, vec![TokenId(0), TokenId(2)]);
    }

    #[test]
    fn roundtrip() {
        let (d, names) = read_tsv(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        write_tsv(&mut buf, &d, &names).unwrap();
        let (d2, names2) = read_tsv(Cursor::new(buf)).unwrap();
        assert_eq!(d.objects, d2.objects);
        assert_eq!(names, names2);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = read_tsv(Cursor::new("1\t2\t3\t4")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("5 tab-separated"));
    }

    #[test]
    fn rejects_bad_number() {
        let err = read_tsv(Cursor::new("a\t0\t1\t1\tx")).unwrap_err();
        assert!(err.to_string().contains("bad number"));
    }

    #[test]
    fn rejects_inverted_rect() {
        let err = read_tsv(Cursor::new("5\t0\t1\t1\tx")).unwrap_err();
        assert!(err.to_string().contains("bad rectangle"));
    }

    #[test]
    fn empty_tokens_are_allowed() {
        let (d, _) = read_tsv(Cursor::new("0\t0\t1\t1\t\n")).unwrap();
        assert_eq!(d.objects.len(), 1);
        assert!(d.objects[0].tokens.is_empty());
    }

    #[test]
    fn generated_dataset_roundtrips() {
        let d = crate::twitter_like(&crate::TwitterParams {
            count: 100,
            seed: 4,
            ..crate::TwitterParams::default()
        });
        let names: Vec<String> = (0..d.vocab_size).map(|i| format!("tok{i}")).collect();
        let mut buf = Vec::new();
        write_tsv(&mut buf, &d, &names).unwrap();
        let (d2, _) = read_tsv(Cursor::new(buf)).unwrap();
        assert_eq!(d.objects.len(), d2.objects.len());
        for (a, b) in d.objects.iter().zip(d2.objects.iter()) {
            assert!((a.region.area() - b.region.area()).abs() < 1e-9);
            assert_eq!(a.tokens.len(), b.tokens.len());
        }
    }
}
