//! The USA-like dataset generator (the paper's synthetic dataset:
//! USA POIs extended with random extents, DBLP records as token sets).
//!
//! Properties reproduced from Section 6.1: ~1M regions (scaled), mean
//! region area ≈ 5.4 km² (much smaller and less skewed than Twitter's),
//! entire space ≈ 473 million km², average 12.5 tokens per object.
//! POI centres mix dense metropolitan clusters with a uniform rural
//! background.

use crate::{Dataset, RawObject, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seal_geom::Rect;
use seal_text::TokenId;

/// Tuning knobs for the USA-like generator.
#[derive(Debug, Clone)]
pub struct UsaParams {
    /// Number of objects.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Side of the square data space in km (473M km² → ≈21,749 km).
    pub space_km: f64,
    /// Number of metro clusters. `0` (the default) auto-scales with
    /// `count` so per-metro density matches the paper's 1M-object
    /// dataset (~20,000 POIs per metro).
    pub metros: usize,
    /// Fraction of POIs in metros (the rest are uniform background).
    pub metro_fraction: f64,
    /// Vocabulary size.
    pub vocab: usize,
    /// Mean tokens per object (paper: 12.5).
    pub mean_tokens: f64,
}

impl Default for UsaParams {
    fn default() -> Self {
        UsaParams {
            count: 100_000,
            seed: 0x5EA1_2012 ^ 2,
            space_km: 21_749.0,
            metros: 0,
            metro_fraction: 0.8,
            vocab: 30_000,
            mean_tokens: 12.5,
        }
    }
}

impl UsaParams {
    /// The effective metro count (resolves the auto-scale default).
    pub fn effective_metros(&self) -> usize {
        if self.metros > 0 {
            self.metros
        } else {
            (self.count / 20_000).clamp(5, 100)
        }
    }
}

/// Generates the USA-like dataset.
pub fn usa_like(params: &UsaParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let side = params.space_km;
    let metros: Vec<(f64, f64, f64)> = (0..params.effective_metros().max(1))
        .map(|_| {
            (
                rng.gen::<f64>() * side,
                rng.gen::<f64>() * side,
                5.0 + rng.gen::<f64>() * 40.0,
            )
        })
        .collect();
    let metro_pick = Zipf::new(metros.len(), 0.8);
    let token_zipf = Zipf::new(params.vocab.max(1), 0.8);
    // Mean extent e such that E[w]·E[h] = (e/2)² ≈ 5.4 ⇒ e ≈ 4.65 km.
    let max_extent = (5.4f64).sqrt() * 2.0;

    let mut objects = Vec::with_capacity(params.count);
    for _ in 0..params.count {
        let (cx, cy) = if rng.gen::<f64>() < params.metro_fraction {
            let (mx, my, sigma) = metros[metro_pick.sample(&mut rng)];
            let (g1, g2) = gaussian_pair(&mut rng);
            (
                (mx + g1 * sigma).clamp(0.0, side),
                (my + g2 * sigma).clamp(0.0, side),
            )
        } else {
            (rng.gen::<f64>() * side, rng.gen::<f64>() * side)
        };
        // "extended the POIs with random widths and heights".
        let w = rng.gen::<f64>() * max_extent;
        let h = rng.gen::<f64>() * max_extent;
        let x0 = (cx - w / 2.0).clamp(0.0, side - w);
        let y0 = (cy - h / 2.0).clamp(0.0, side - h);
        let region = Rect::new(x0, y0, x0 + w, y0 + h).expect("generated rect is valid");

        let n_tokens = sample_count(&mut rng, params.mean_tokens);
        let tokens = (0..n_tokens)
            .map(|_| TokenId(token_zipf.sample(&mut rng) as u32))
            .collect();
        objects.push(RawObject { region, tokens });
    }
    Dataset {
        objects,
        vocab_size: params.vocab,
        name: "usa-like",
    }
}

fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f64::consts::PI * u2;
    (r * th.cos(), r * th.sin())
}

fn sample_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let lo = (mean * 0.4).max(1.0);
    let hi = mean * 1.6;
    (lo + rng.gen::<f64>() * (hi - lo)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UsaParams {
        UsaParams {
            count: 5_000,
            seed: 11,
            ..UsaParams::default()
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(usa_like(&small()).objects, usa_like(&small()).objects);
    }

    #[test]
    fn mean_area_is_near_paper() {
        let d = usa_like(&UsaParams {
            count: 30_000,
            seed: 5,
            ..UsaParams::default()
        });
        let mean = d.avg_region_area();
        assert!((3.0..8.0).contains(&mean), "mean area {mean} (paper ≈ 5.4)");
    }

    #[test]
    fn regions_smaller_than_twitter() {
        let usa = usa_like(&small());
        let tw = crate::twitter_like(&crate::TwitterParams {
            count: 5_000,
            seed: 11,
            ..crate::TwitterParams::default()
        });
        assert!(usa.avg_region_area() < tw.avg_region_area());
    }

    #[test]
    fn token_counts_near_mean() {
        let d = usa_like(&small());
        let avg = d.avg_token_count();
        assert!((10.0..16.0).contains(&avg), "avg tokens {avg}");
    }

    #[test]
    fn regions_inside_space() {
        let p = small();
        let d = usa_like(&p);
        let space = Rect::new(0.0, 0.0, p.space_km, p.space_km).unwrap();
        for o in &d.objects {
            assert!(space.contains_rect(&o.region));
        }
    }
}
