//! # seal-server — the network serving tier over any `QueryEngine`.
//!
//! Everything below the socket already existed: lock-free
//! `Arc<SealEngine>` generation swaps, caller-owned `QueryContext`
//! serving loops, work-stealing `search_batch`, a durable `.seal`
//! container, and (since the sharding refactor) a partitioned
//! `ShardedEngine` — all behind `seal_core::QueryEngine`, which is the
//! only engine surface this crate touches. This crate is the piece
//! that speaks TCP: a
//! dependency-free (std-only, per the `shims/` policy) HTTP/1.1
//! server exposing `/query`, `/push`, `/refresh`, `/status` and
//! `/metrics`, with
//!
//! * **adaptive request batching** — concurrent `/query` requests
//!   coalesce into one `search_batch` dispatch (group-commit; see
//!   [`batcher`]),
//! * **admission control** — bounded connection pool, bounded query
//!   queue, staged-churn bound, all shedding with `503 Retry-After`,
//! * **observable tail latency** — lock-free per-endpoint histograms
//!   and generation/staleness gauges at `/metrics`,
//! * a **hardened wire parser** — every byte limit enforced before
//!   allocation, every rejection a typed [`http::ParseError`]
//!   (proptest-fuzzed in `tests/server_parser_fuzz.rs`).
//!
//! ```no_run
//! use seal_core::{FilterKind, LiveEngine, ObjectStore};
//! use seal_server::{Server, ServerConfig, client::HttpClient};
//! use std::sync::Arc;
//!
//! let store = Arc::new(ObjectStore::from_labeled(vec![
//!     (seal_geom::Rect::new(0.0, 0.0, 40.0, 40.0).unwrap(), vec!["coffee"]),
//! ]));
//! let live = Arc::new(LiveEngine::new(store, FilterKind::Token));
//! let server = Server::spawn(live, ServerConfig::default()).unwrap();
//! let mut c = HttpClient::connect(&server.addr().to_string()).unwrap();
//! let r = c.request("GET", "/query?region=0,0,50,50&tokens=coffee&tau_r=0.2&tau_t=0.2", b"").unwrap();
//! assert_eq!(r.status, 200);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod http;
pub mod metrics;
mod server;

pub use client::{HttpClient, HttpResponse, LoadReport};
pub use http::{Limits, ParseError, Request};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig};
