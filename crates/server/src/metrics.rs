//! Lock-free serving metrics: per-endpoint latency histograms and
//! traffic counters, all plain atomics so the hot path never takes a
//! lock to record an observation.
//!
//! The histogram is log₂-bucketed over microseconds (bucket *i* covers
//! `[2^i, 2^(i+1))` µs), which bounds any reported percentile's
//! relative error at 2× — plenty for `/metrics` dashboards and
//! backpressure decisions. The load generator measures *exact*
//! percentiles client-side; the two are compared in `bench_serve`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: covers up to ~2^31 µs ≈ 36 min per request.
const BUCKETS: usize = 32;

/// A lock-free log₂ latency histogram (microsecond domain).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn record_us(&self, us: u64) {
        let idx = (u64::BITS - 1 - us.max(1).leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate percentile (`p ∈ [0, 1]`) in microseconds: the
    /// geometric midpoint of the bucket holding the p-th observation.
    /// Within 2× of the true value by construction; 0 when empty.
    pub fn percentile_us(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                return (1u64 << i) as f64 * std::f64::consts::SQRT_2;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64
    }

    /// JSON fragment: `{"count":…,"mean_us":…,"p50_us":…,…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1}}}",
            self.count(),
            self.mean_us(),
            self.percentile_us(0.50),
            self.percentile_us(0.95),
            self.percentile_us(0.99),
        )
    }
}

/// Counters + latency for one endpoint.
#[derive(Default)]
pub struct EndpointMetrics {
    /// Responses in the 2xx class.
    pub ok: AtomicU64,
    /// Responses in the 4xx class.
    pub client_error: AtomicU64,
    /// Responses in the 5xx class (503 backpressure included).
    pub server_error: AtomicU64,
    /// Latency of the 2xx responses.
    pub latency: Histogram,
}

impl EndpointMetrics {
    /// Records one exchange: status class counter + latency (2xx
    /// only, so rejection fast paths don't drag percentiles down).
    pub fn record(&self, status: u16, us: u64) {
        match status {
            200..=299 => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.latency.record_us(us);
            }
            400..=499 => {
                self.client_error.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.server_error.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"ok\":{},\"client_error\":{},\"server_error\":{},\"latency\":{}}}",
            self.ok.load(Ordering::Relaxed),
            self.client_error.load(Ordering::Relaxed),
            self.server_error.load(Ordering::Relaxed),
            self.latency.to_json(),
        )
    }
}

/// Every counter the serving tier exposes at `/metrics`.
#[derive(Default)]
pub struct Metrics {
    /// `/query` exchanges.
    pub query: EndpointMetrics,
    /// `/push` exchanges.
    pub push: EndpointMetrics,
    /// `/refresh` exchanges.
    pub refresh: EndpointMetrics,
    /// `/status` + `/metrics` exchanges.
    pub admin: EndpointMetrics,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused at the accept gate (pool exhausted).
    pub connections_refused: AtomicU64,
    /// Requests answered 503 for backpressure (queue or churn).
    pub rejected_busy: AtomicU64,
    /// Malformed requests (any [`crate::http::ParseError`]).
    pub parse_errors: AtomicU64,
    /// Requests that timed out mid-read (slow loris).
    pub read_timeouts: AtomicU64,
    /// Batches dispatched through `search_batch`.
    pub batches: AtomicU64,
    /// Queries carried by those batches (`batched_queries / batches`
    /// = mean coalescing factor).
    pub batched_queries: AtomicU64,
    /// Largest batch dispatched so far.
    pub max_batch: AtomicU64,
}

impl Metrics {
    /// Records one dispatched batch of `n` queries.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// The full `/metrics` JSON document. Generation/staleness gauges
    /// and the per-shard detail (`shards`: a pre-rendered JSON array,
    /// `[]` for single-arena engines) are sampled by the caller — the
    /// server owns the engine.
    pub fn to_json(&self, generation: u64, staged: usize, objects: usize, shards: &str) -> String {
        format!(
            "{{\"generation\":{generation},\"staged\":{staged},\"objects\":{objects},\
             \"shards\":{shards},\
             \"connections\":{},\"connections_refused\":{},\"rejected_busy\":{},\
             \"parse_errors\":{},\"read_timeouts\":{},\
             \"batches\":{},\"batched_queries\":{},\"max_batch\":{},\
             \"query\":{},\"push\":{},\"refresh\":{},\"admin\":{}}}",
            self.connections.load(Ordering::Relaxed),
            self.connections_refused.load(Ordering::Relaxed),
            self.rejected_busy.load(Ordering::Relaxed),
            self.parse_errors.load(Ordering::Relaxed),
            self.read_timeouts.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.batched_queries.load(Ordering::Relaxed),
            self.max_batch.load(Ordering::Relaxed),
            self.query.to_json(),
            self.push.to_json(),
            self.refresh.to_json(),
            self.admin.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_within_a_bucket() {
        let h = Histogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the [8,16) bucket; p99 in [512,1024).
        let p50 = h.percentile_us(0.50);
        assert!((8.0..16.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile_us(0.99);
        assert!((512.0..1024.0).contains(&p99), "p99 = {p99}");
        assert!((h.mean_us() - 109.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile_us(0.99), 0.0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn zero_latency_is_recorded_not_panicked() {
        let h = Histogram::default();
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile_us(0.5) >= 1.0);
    }

    #[test]
    fn endpoint_records_by_status_class() {
        let e = EndpointMetrics::default();
        e.record(200, 100);
        e.record(404, 5);
        e.record(503, 1);
        assert_eq!(e.ok.load(Ordering::Relaxed), 1);
        assert_eq!(e.client_error.load(Ordering::Relaxed), 1);
        assert_eq!(e.server_error.load(Ordering::Relaxed), 1);
        assert_eq!(e.latency.count(), 1, "only 2xx latencies recorded");
    }

    #[test]
    fn metrics_json_is_wellformed_enough() {
        let m = Metrics::default();
        m.record_batch(4);
        m.record_batch(2);
        let json = m.to_json(
            3,
            17,
            900,
            "[{\"generation\":3,\"staged\":9,\"objects\":450}]",
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"generation\":3"));
        assert!(json.contains("\"staged\":17"));
        assert!(json.contains("\"shards\":[{\"generation\":3,"));
        assert!(json.contains("\"batches\":2"));
        assert!(json.contains("\"batched_queries\":6"));
        assert!(json.contains("\"max_batch\":4"));
    }
}
