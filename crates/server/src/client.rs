//! A minimal blocking HTTP/1.1 client and an open-loop load
//! generator — enough to drive the serving tier from the CLI
//! (`seal loadgen`), the bench (`bench_serve`) and CI smoke tests
//! without any external dependency.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    addr: String,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects (with a 5 s timeout on reads so a wedged server fails
    /// the caller instead of hanging it).
    pub fn connect(addr: &str) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            addr: addr.to_string(),
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads the full response. Reconnects once
    /// transparently if the keep-alive connection was closed under us
    /// (the server's idle timeout or a `Connection: close` exchange).
    pub fn request(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<HttpResponse> {
        match self.try_request(method, target, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                *self = HttpClient::connect(&self.addr)?;
                self.try_request(method, target, body)
            }
        }
    }

    fn try_request(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<HttpResponse> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: seal\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            self.stream.write_all(body)?;
        }
        read_response(&mut self.stream, &mut self.buf)
    }
}

/// Reads one response from the stream; `buf` carries bytes of a
/// following pipelined response between calls.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<HttpResponse> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(parsed) = try_parse_response(buf)? {
            return Ok(parsed);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Parses one complete response from the front of `buf` (draining the
/// consumed bytes), or `None` when more bytes are needed.
fn try_parse_response(buf: &mut Vec<u8>) -> io::Result<Option<HttpResponse>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    // Interim 100 Continue responses have no body; skip to the real one.
    if status == 100 {
        buf.drain(..head_end + 4);
        return try_parse_response(buf);
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[head_end + 4..total].to_vec();
    buf.drain(..total);
    Ok(Some(HttpResponse {
        status,
        body,
        keep_alive,
    }))
}

/// What one load-generation run measured. Latencies are exact
/// (client-side, per-request), unlike the server's log-bucketed
/// histograms.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The request rate the schedule aimed for.
    pub offered_qps: f64,
    /// Requests completed per wall-clock second.
    pub achieved_qps: f64,
    /// Requests sent.
    pub sent: usize,
    /// 2xx responses.
    pub ok: usize,
    /// 503 responses (backpressure sheds — expected under overload).
    pub shed: usize,
    /// Any other non-2xx response or transport error.
    pub errors: usize,
    /// Exact latency percentiles over the 2xx responses, microseconds.
    pub p50_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// Worst observed (µs).
    pub max_us: f64,
}

impl LoadReport {
    /// The report as a JSON object (the `BENCH_serve.json` row shape).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered_qps\":{:.1},\"achieved_qps\":{:.1},\"sent\":{},\"ok\":{},\
             \"shed\":{},\"errors\":{},\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1},\
             \"max_us\":{:.1}}}",
            self.offered_qps,
            self.achieved_qps,
            self.sent,
            self.ok,
            self.shed,
            self.errors,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// Exact percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Drives `targets` round-robin at `offered_qps` for `duration`,
/// spread over `clients` keep-alive connections, open-loop (each
/// request fires at its scheduled instant whether or not earlier ones
/// returned — so queueing delay shows up as latency, not as a lower
/// offered rate).
///
/// `targets` are `(method, path, body)` triples; a plain query
/// workload passes `("GET", "/query?...", b"")`.
pub fn run_load(
    addr: &str,
    targets: &[(String, String, Vec<u8>)],
    offered_qps: f64,
    duration: Duration,
    clients: usize,
) -> io::Result<LoadReport> {
    assert!(!targets.is_empty(), "load needs at least one target");
    let clients = clients.max(1);
    let total = (offered_qps * duration.as_secs_f64()).round().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / offered_qps.max(1e-9));
    let start = Instant::now() + Duration::from_millis(5);

    struct ThreadOut {
        latencies_us: Vec<u64>,
        sent: usize,
        ok: usize,
        shed: usize,
        errors: usize,
    }

    let outs: Vec<io::Result<ThreadOut>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            handles.push(scope.spawn(move || -> io::Result<ThreadOut> {
                let mut client = HttpClient::connect(addr)?;
                let mut out = ThreadOut {
                    latencies_us: Vec::new(),
                    sent: 0,
                    ok: 0,
                    shed: 0,
                    errors: 0,
                };
                // Client c owns schedule slots c, c+clients, c+2·clients…
                let mut slot = c;
                while slot < total {
                    let due = start + interval.mul_f64(slot as f64);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let (method, path, body) = &targets[slot % targets.len()];
                    let t0 = Instant::now();
                    out.sent += 1;
                    match client.request(method, path, body) {
                        Ok(r) if (200..300).contains(&r.status) => {
                            out.ok += 1;
                            out.latencies_us
                                .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                        }
                        Ok(r) if r.status == 503 => out.shed += 1,
                        Ok(_) => out.errors += 1,
                        Err(_) => out.errors += 1,
                    }
                    slot += clients;
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            // seal-lint: allow(panic-surface) — loadgen harness thread, not the serving path; a panicked load worker is a harness bug that must be loud
            .map(|h| h.join().expect("load thread"))
            .collect()
    });

    let wall = start.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::new();
    let (mut sent, mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize, 0usize);
    for out in outs {
        let out = out?;
        latencies.extend_from_slice(&out.latencies_us);
        sent += out.sent;
        ok += out.ok;
        shed += out.shed;
        errors += out.errors;
    }
    latencies.sort_unstable();
    Ok(LoadReport {
        offered_qps,
        achieved_qps: ok as f64 / wall.max(1e-9),
        sent,
        ok,
        shed,
        errors,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7], 0.99), 7.0);
    }

    #[test]
    fn response_parsing_handles_split_and_pipelined_bytes() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nokHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let mut buf = Vec::new();
        // Feed byte by byte: must never error, completes exactly twice.
        let mut seen = Vec::new();
        for &b in wire.iter() {
            buf.push(b);
            while let Some(r) = try_parse_response(&mut buf).unwrap() {
                seen.push(r);
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].status, 200);
        assert_eq!(seen[0].body, b"ok");
        assert!(seen[0].keep_alive);
        assert_eq!(seen[1].status, 404);
        assert!(buf.is_empty());
    }

    #[test]
    fn interim_100_is_skipped() {
        let wire =
            b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nx".to_vec();
        let mut buf = wire;
        let r = try_parse_response(&mut buf).unwrap().expect("complete");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"x");
    }
}
