//! The serving loop: a bounded thread-per-connection HTTP/1.1 server
//! over any [`QueryEngine`] (single [`seal_core::LiveEngine`] arena or
//! a partitioned [`seal_core::ShardedEngine`] — construction sites
//! pick; every handler is engine-generic).
//!
//! # Endpoints
//!
//! | method | path       | does |
//! |--------|------------|------|
//! | GET/POST | `/query` | one spatio-textual query (coalesced into adaptive batches) |
//! | POST   | `/push`     | stage objects for the next generation (TSV body) |
//! | POST   | `/refresh`  | fold the staged delta into the next generation |
//! | GET    | `/status`   | generation / staged / object gauges |
//! | GET    | `/metrics`  | per-endpoint latency histograms + counters |
//!
//! # Concurrency model
//!
//! One acceptor thread; one thread per live connection, bounded by
//! [`ServerConfig::max_connections`] (beyond it, connections are
//! answered `503` and closed — admission control at the accept gate).
//! Each connection thread owns a [`QueryContext`]-equivalent through
//! the shared [`Batcher`]: every `/query` flows through
//! [`QueryEngine::search_batch`], whose work-stealing workers each own
//! one context, allocation-free when warm. Requests never hold the
//! engine's swap lock; `/push` and `/refresh` ride the engine's
//! generation protocol unchanged, so everything the `live_ingest.rs`
//! oracle proves about swap atomicity holds verbatim over the wire.
//!
//! # Backpressure
//!
//! Three gates, all answering `503` with `Retry-After`:
//! * accept gate — connection pool exhausted;
//! * query gate — the batcher's queue is at capacity;
//! * churn gate — staged delta grew past
//!   [`ServerConfig::max_staged`] (the staleness window the ROADMAP
//!   documents): `/push` sheds load until a `/refresh` drains it.
//!
//! Slow-loris writes are bounded by
//! [`ServerConfig::request_timeout`]: a request that hasn't fully
//! arrived within it is answered `408` and the connection closed.

use crate::batcher::Batcher;
use crate::http::{self, Limits, Parsed, Request, CONTINUE_100};
use crate::metrics::Metrics;
use seal_core::{EngineStatus, ObjectId, Query, QueryEngine, RoiObject};
use seal_geom::Rect;
use seal_text::{TokenId, TokenSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for one server instance. The defaults serve the test and
/// bench workloads; production deployments would size them to the box.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, bench).
    pub addr: String,
    /// Connection pool bound (accept-gate admission control).
    pub max_connections: usize,
    /// Worker budget for each dispatched query batch (0 = one per
    /// core).
    pub threads: usize,
    /// Largest coalesced batch per dispatch.
    pub max_batch: usize,
    /// Queued-query bound; submissions beyond it are shed with `503`.
    pub max_queued: usize,
    /// Staged-delta churn bound; `/push` sheds with `503` beyond it.
    pub max_staged: usize,
    /// How long one request may take to arrive in full (slow-loris
    /// bound) and how long an idle keep-alive connection is kept.
    pub request_timeout: Duration,
    /// HTTP parse limits (head bytes, header count, body bytes).
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 128,
            threads: 0,
            max_batch: 64,
            max_queued: 1024,
            max_staged: 1 << 20,
            request_timeout: Duration::from_secs(10),
            limits: Limits::default(),
        }
    }
}

/// Shared server state (one allocation, `Arc`ed into every thread).
struct Shared {
    engine: Arc<dyn QueryEngine>,
    batcher: Batcher,
    metrics: Metrics,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    started: Instant,
}

/// A running server: spawn with [`Server::spawn`], stop with
/// [`Server::shutdown`] (which joins every thread).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts serving `engine`. Returns once the
    /// listener is accepting (the bound address is
    /// [`addr`](Server::addr), useful with port 0).
    pub fn spawn(engine: Arc<dyn QueryEngine>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            batcher: Batcher::new(engine.clone(), cfg.max_batch, cfg.max_queued, cfg.threads),
            engine,
            metrics: Metrics::default(),
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let accept_shared = shared.clone();
        let acceptor = std::thread::Builder::new()
            .name("seal-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server (tests compare wire answers
    /// against direct calls on it).
    pub fn engine(&self) -> Arc<dyn QueryEngine> {
        self.shared.engine.clone()
    }

    /// Serving metrics (shared with `/metrics`).
    pub fn metrics_json(&self) -> String {
        metrics_document(&self.shared)
    }

    /// Stops accepting, wakes the acceptor, and joins every thread.
    /// In-flight requests finish (connection threads notice the flag
    /// within one poll tick).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

/// Accepts connections until shutdown; enforces the pool bound; joins
/// finished connection threads opportunistically and all of them on
/// exit.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok((stream, _peer)) = conn else { continue };
        // Reap finished threads so the handle list stays bounded by
        // the live-connection count.
        handles.retain(|h| !h.is_finished());
        if shared.active.load(Ordering::Acquire) >= shared.cfg.max_connections {
            shared
                .metrics
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            let body = error_body("connection pool exhausted");
            let _ = (&stream).write_all(&http::encode_response(
                503,
                "Service Unavailable",
                &[("Retry-After", "1")],
                body.as_bytes(),
                false,
            ));
            continue; // stream drops → close
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        shared.active.fetch_add(1, Ordering::AcqRel);
        let conn_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("seal-conn".into())
            .spawn(move || {
                // Decrement on drop, so a panicking handler can't
                // leak a pool slot and starve the accept gate.
                struct SlotGuard<'a>(&'a AtomicUsize);
                impl Drop for SlotGuard<'_> {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                let _slot = SlotGuard(&conn_shared.active);
                handle_connection(stream, &conn_shared);
            });
        match spawned {
            Ok(h) => handles.push(h),
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

/// Poll tick: how often a blocked read re-checks the shutdown flag
/// and the request deadline.
const POLL_TICK: Duration = Duration::from_millis(50);

/// One connection's serve loop: incremental reads, pipelining,
/// keep-alive, typed rejections, slow-loris deadline.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let limits = shared.cfg.limits;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Deadline for the *current* request (or idle period) to make
    // progress; reset after each completed exchange.
    let mut deadline = Instant::now() + shared.cfg.request_timeout;
    let mut sent_continue = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Serve every complete pipelined request already buffered.
        loop {
            match http::parse_request(&buf, &limits) {
                Ok(Parsed::Complete(req, consumed)) => {
                    buf.drain(..consumed);
                    let keep_alive = req.keep_alive;
                    let response = respond(shared, &req);
                    if stream.write_all(&response).is_err() {
                        return;
                    }
                    if !keep_alive {
                        lingering_close(&mut stream);
                        return;
                    }
                    deadline = Instant::now() + shared.cfg.request_timeout;
                    sent_continue = false;
                }
                Ok(Parsed::NeedMore) => break,
                Err(e) => {
                    shared.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
                    let (status, reason) = e.status();
                    let body = error_body(&e.to_string());
                    let _ = stream.write_all(&http::encode_response(
                        status,
                        reason,
                        &[],
                        body.as_bytes(),
                        false,
                    ));
                    lingering_close(&mut stream);
                    return;
                }
            }
        }
        // The head is complete but the body still in flight, and the
        // client is waiting for permission to send it.
        if !sent_continue && http::wants_continue(&buf, &limits) {
            if stream.write_all(CONTINUE_100).is_err() {
                return;
            }
            sent_continue = true;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    if !buf.is_empty() {
                        // A request started but never finished: the
                        // slow-loris bound fires.
                        shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                        let body = error_body("request did not arrive in time");
                        let _ = stream.write_all(&http::encode_response(
                            408,
                            "Request Timeout",
                            &[],
                            body.as_bytes(),
                            false,
                        ));
                        lingering_close(&mut stream);
                    }
                    return; // idle keep-alive expiry closes silently
                }
            }
            Err(_) => return,
        }
    }
}

/// Lingering close: half-close the write side, then drain (and
/// discard) whatever request bytes the peer already sent, bounded in
/// both bytes and time. Closing with unread data in the kernel buffer
/// makes TCP send RST, which can destroy the error response before
/// the client reads it — draining first lets the close complete with
/// FIN so the typed status actually arrives.
fn lingering_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 1 << 20 && Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(n) => drained += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Routes one request and records metrics. Always returns the full
/// response bytes.
fn respond(shared: &Shared, req: &Request) -> Vec<u8> {
    let start = Instant::now();
    let (status, reason, extra, body, endpoint) = route(shared, req);
    let us = start.elapsed().as_micros() as u64;
    let ep = match endpoint {
        Endpoint::Query => &shared.metrics.query,
        Endpoint::Push => &shared.metrics.push,
        Endpoint::Refresh => &shared.metrics.refresh,
        Endpoint::Admin => &shared.metrics.admin,
    };
    ep.record(status, us);
    let headers: Vec<(&str, &str)> = extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
    http::encode_response(status, reason, &headers, body.as_bytes(), req.keep_alive)
}

enum Endpoint {
    Query,
    Push,
    Refresh,
    Admin,
}

type Routed = (
    u16,
    &'static str,
    Vec<(&'static str, String)>,
    String,
    Endpoint,
);

fn route(shared: &Shared, req: &Request) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/status") | ("GET", "/") => {
            (200, "OK", vec![], status_body(shared), Endpoint::Admin)
        }
        ("GET", "/metrics") => (200, "OK", vec![], metrics_document(shared), Endpoint::Admin),
        ("GET", "/query") | ("POST", "/query") => handle_query(shared, req),
        ("POST", "/push") => handle_push(shared, req),
        ("POST", "/refresh") => handle_refresh(shared),
        (_, "/status") | (_, "/metrics") | (_, "/") => method_not_allowed("GET", Endpoint::Admin),
        (_, "/query") => method_not_allowed("GET, POST", Endpoint::Query),
        (_, "/push") => method_not_allowed("POST", Endpoint::Push),
        (_, "/refresh") => method_not_allowed("POST", Endpoint::Refresh),
        _ => (
            404,
            "Not Found",
            vec![],
            error_body("no such endpoint (have: /query /push /refresh /status /metrics)"),
            Endpoint::Admin,
        ),
    }
}

fn method_not_allowed(allow: &'static str, ep: Endpoint) -> Routed {
    (
        405,
        "Method Not Allowed",
        vec![("Allow", allow.to_string())],
        error_body("method not allowed"),
        ep,
    )
}

fn busy(shared: &Shared, what: &str, ep: Endpoint) -> Routed {
    shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
    (
        503,
        "Service Unavailable",
        vec![("Retry-After", "1".to_string())],
        error_body(what),
        ep,
    )
}

fn handle_query(shared: &Shared, req: &Request) -> Routed {
    // POST carries the params in the body (query-string syntax); GET
    // in the URL. Both accept the same keys.
    let body_string;
    let params: &str = if req.method == "POST" && !req.body.is_empty() {
        match std::str::from_utf8(&req.body) {
            Ok(s) => {
                body_string = s.trim().to_string();
                &body_string
            }
            Err(_) => {
                return (
                    400,
                    "Bad Request",
                    vec![],
                    error_body("query body must be UTF-8 key=value pairs"),
                    Endpoint::Query,
                )
            }
        }
    } else {
        &req.query
    };
    let query = match parse_query_params(shared, params) {
        Ok(q) => q,
        Err(msg) => {
            return (
                400,
                "Bad Request",
                vec![],
                error_body(&msg),
                Endpoint::Query,
            )
        }
    };
    let result = match shared
        .batcher
        .submit(query, &|n| shared.metrics.record_batch(n))
    {
        Ok(r) => r,
        Err(_) => return busy(shared, "query queue at capacity", Endpoint::Query),
    };
    let result = result.sorted();
    let ids: Vec<String> = result.answers.iter().map(|id| id.0.to_string()).collect();
    let body = format!(
        "{{\"answers\":[{}],\"count\":{},\"candidates\":{},\"generation\":{}}}",
        ids.join(","),
        result.answers.len(),
        result.stats.candidates,
        shared.engine.generation(),
    );
    (200, "OK", vec![], body, Endpoint::Query)
}

/// Parses `region=x0,y0,x1,y1&tokens=a,b&tau_r=F&tau_t=F` into a
/// validated [`Query`]. Tokens are numeric ids, or names when the
/// store carries a dictionary.
fn parse_query_params(shared: &Shared, params: &str) -> Result<Query, String> {
    let region = http::query_param(params, "region").ok_or("missing required param: region")?;
    let region = parse_rect(region)?;
    let tokens = http::query_param(params, "tokens").unwrap_or("");
    let mut ids: Vec<TokenId> = Vec::new();
    for t in tokens.split(',').map(str::trim) {
        if t.is_empty() {
            continue;
        }
        ids.push(resolve_token(shared.engine.as_ref(), t)?);
    }
    let tau_r = parse_f64_param(params, "tau_r", 0.4)?;
    let tau_t = parse_f64_param(params, "tau_t", 0.4)?;
    Query::with_token_ids(region, ids, tau_r, tau_t).map_err(|e| e.to_string())
}

fn parse_f64_param(params: &str, key: &str, default: f64) -> Result<f64, String> {
    match http::query_param(params, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad {key}: {e}")),
    }
}

fn parse_rect(s: &str) -> Result<Rect, String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 4 {
        return Err(format!(
            "region must be x0,y0,x1,y1 — got {} fields",
            parts.len()
        ));
    }
    let mut nums = [0.0f64; 4];
    for (i, p) in parts.iter().enumerate() {
        nums[i] = p
            .trim()
            .parse()
            .map_err(|e| format!("bad region coordinate {p:?}: {e}"))?;
    }
    Rect::new(nums[0], nums[1], nums[2], nums[3]).map_err(|e| e.to_string())
}

/// A token as sent over the wire: a numeric id, or a dictionary name.
fn resolve_token(engine: &dyn QueryEngine, t: &str) -> Result<TokenId, String> {
    if t.bytes().all(|b| b.is_ascii_digit()) {
        let id: u32 = t.parse().map_err(|e| format!("bad token id {t:?}: {e}"))?;
        return Ok(TokenId(id));
    }
    engine.resolve_token(t).ok_or_else(|| {
        format!("unknown token {t:?} (not numeric and not in the engine's dictionary)")
    })
}

/// `/push` body: one object per line, `x0 y0 x1 y1 tok,tok,tok`
/// (whitespace-separated coordinates — the datagen TSV shape). The
/// whole body is validated before anything is staged, so a malformed
/// line stages nothing.
fn handle_push(shared: &Shared, req: &Request) -> Routed {
    if shared.engine.staged_len() >= shared.cfg.max_staged {
        return busy(
            shared,
            "staged delta at capacity; POST /refresh to drain it",
            Endpoint::Push,
        );
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (
            400,
            "Bad Request",
            vec![],
            error_body("push body must be UTF-8 TSV"),
            Endpoint::Push,
        );
    };
    let mut objects: Vec<RoiObject> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_push_line(shared.engine.as_ref(), line) {
            Ok(o) => objects.push(o),
            Err(msg) => {
                return (
                    400,
                    "Bad Request",
                    vec![],
                    error_body(&format!("line {}: {msg}", lineno + 1)),
                    Endpoint::Push,
                )
            }
        }
    }
    if objects.is_empty() {
        return (
            400,
            "Bad Request",
            vec![],
            error_body("push body staged no objects"),
            Endpoint::Push,
        );
    }
    let count = objects.len();
    let first = shared.engine.push_all(objects);
    let body = format!(
        "{{\"staged\":{count},\"first_id\":{},\"total_staged\":{}}}",
        first.map_or(0, |ObjectId(id)| id),
        shared.engine.staged_len(),
    );
    (200, "OK", vec![], body, Endpoint::Push)
}

fn parse_push_line(engine: &dyn QueryEngine, line: &str) -> Result<RoiObject, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 5 {
        return Err(format!(
            "expected `x0 y0 x1 y1 tokens,comma,separated` — got {} fields",
            fields.len()
        ));
    }
    let mut nums = [0.0f64; 4];
    for (i, f) in fields[..4].iter().enumerate() {
        nums[i] = f
            .parse()
            .map_err(|e| format!("bad coordinate {f:?}: {e}"))?;
    }
    let region = Rect::new(nums[0], nums[1], nums[2], nums[3]).map_err(|e| e.to_string())?;
    let mut ids: Vec<TokenId> = Vec::new();
    for t in fields[4].split(',').map(str::trim) {
        if t.is_empty() {
            continue;
        }
        ids.push(resolve_token(engine, t)?);
    }
    if ids.is_empty() {
        return Err("an object needs at least one token".to_string());
    }
    Ok(RoiObject::new(region, TokenSet::from_ids(ids)))
}

fn handle_refresh(shared: &Shared) -> Routed {
    let stats = shared.engine.refresh();
    let body = format!(
        "{{\"generation\":{},\"merged\":{},\"total\":{},\"build_seconds\":{:.6},\"scheme_reused\":{}}}",
        stats.generation, stats.merged, stats.total, stats.build_seconds, stats.scheme_reused,
    );
    (200, "OK", vec![], body, Endpoint::Refresh)
}

/// Renders [`EngineStatus::shards`] as a JSON array — one row per
/// shard, empty (`[]`) for a single-arena engine. Shared by `/status`
/// and `/metrics` so operators see an uneven partition in either.
fn shards_json(status: &EngineStatus) -> String {
    let rows: Vec<String> = status
        .shards
        .iter()
        .map(|s| {
            format!(
                "{{\"generation\":{},\"staged\":{},\"objects\":{}}}",
                s.generation, s.staged, s.objects
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn status_body(shared: &Shared) -> String {
    let status = shared.engine.status();
    format!(
        "{{\"generation\":{},\"objects\":{},\"staged\":{},\"filter\":\"{}\",\
         \"index_bytes\":{},\"shards\":{},\"queued_queries\":{},\"uptime_seconds\":{:.3}}}",
        shared.engine.generation(),
        shared.engine.len(),
        shared.engine.staged_len(),
        status.filter,
        status.index_bytes,
        shards_json(&status),
        shared.batcher.queued(),
        shared.started.elapsed().as_secs_f64(),
    )
}

fn metrics_document(shared: &Shared) -> String {
    shared.metrics.to_json(
        shared.engine.generation(),
        shared.engine.staged_len(),
        shared.engine.len(),
        &shards_json(&shared.engine.status()),
    )
}

fn error_body(msg: &str) -> String {
    // The messages are ASCII from our own code; escape the two JSON
    // specials that could sneak in via numbers/paths anyway.
    let escaped: String = msg
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    format!("{{\"error\":\"{escaped}\"}}")
}

// The end-to-end behavior (sockets, pipelining, hostile inputs,
// concurrency oracle) is pinned by the black-box integration tests
// `tests/server_protocol.rs` and `tests/server_concurrent.rs` at the
// workspace root; unit tests here cover the pure helpers.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_param_parsing() {
        assert!(parse_rect("0,0,10,10").is_ok());
        assert!(parse_rect("0,0,10").is_err());
        assert!(parse_rect("a,b,c,d").is_err());
        assert!(parse_rect("10,0,0,10").is_err(), "inverted");
    }

    #[test]
    fn error_body_escapes_json_specials() {
        let b = error_body("bad \"token\" \\ and\ncontrol");
        assert!(b.contains("\\\"token\\\""));
        assert!(!b.contains('\n'));
        assert!(b.starts_with("{\"error\":\""));
    }
}
