//! A shim-grade HTTP/1.1 request parser and response writer.
//!
//! The build environment has no registry access, so the wire protocol
//! is implemented from scratch over `std` — the same policy as
//! `shims/`. The parser is **incremental** (feed it a growing buffer,
//! it answers "need more bytes", "here is a request", or a typed
//! [`ParseError`]), **bounded** (request-line/header bytes, header
//! count and body length are all capped *before* any allocation is
//! sized from attacker-controlled input — the `container.rs`
//! validation discipline applied to sockets), and **total**: no input
//! byte sequence panics, every rejection carries the HTTP status the
//! server should answer with.
//!
//! Supported surface: `HTTP/1.0` and `HTTP/1.1`, `Content-Length`
//! bodies, keep-alive and pipelining. `Transfer-Encoding` is refused
//! with `501` (the serving tier never needs chunked requests).

use std::fmt;

/// Hard limits applied while parsing one request. Defaults are
/// generous for the serving workload and small enough that a hostile
/// peer cannot make the server buffer unbounded garbage.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including the blank
    /// line). Exceeding it is `431 Request Header Fields Too Large`.
    pub max_head_bytes: usize,
    /// Maximum number of header lines (`431` beyond).
    pub max_headers: usize,
    /// Maximum declared `Content-Length` (`413 Payload Too Large`
    /// beyond — checked against the *declared* length, so the server
    /// never buffers an oversized body to find out).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a byte stream was rejected. Every variant maps to one HTTP
/// status via [`ParseError::status`]; none of them panic or allocate
/// proportionally to the hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line was not `METHOD SP target SP HTTP/1.x`.
    BadRequestLine,
    /// The HTTP version is not 1.0 or 1.1 (`505`).
    UnsupportedVersion,
    /// A header line had no `:`, an empty name, or a name with
    /// whitespace/control bytes.
    BadHeader,
    /// More header lines than [`Limits::max_headers`] (`431`).
    TooManyHeaders,
    /// Request line + headers exceed [`Limits::max_head_bytes`]
    /// (`431`).
    HeadTooLarge,
    /// `Content-Length` missing digits, duplicated with a different
    /// value, or unparseable.
    BadContentLength,
    /// Declared body length exceeds [`Limits::max_body_bytes`]
    /// (`413`).
    BodyTooLarge,
    /// `Transfer-Encoding` is present; the server only accepts
    /// `Content-Length` bodies (`501`).
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The HTTP status (code, reason) the server answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ParseError::BadRequestLine | ParseError::BadHeader | ParseError::BadContentLength => {
                (400, "Bad Request")
            }
            ParseError::UnsupportedVersion => (505, "HTTP Version Not Supported"),
            ParseError::TooManyHeaders | ParseError::HeadTooLarge => {
                (431, "Request Header Fields Too Large")
            }
            ParseError::BodyTooLarge => (413, "Payload Too Large"),
            ParseError::UnsupportedTransferEncoding => (501, "Not Implemented"),
        }
    }
}

impl fmt::Display for ParseError {
    // The variants are self-describing; the text only ever lands in
    // logs and error bodies.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ParseError {}

/// One fully received request: head parsed, body bytes owned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the target (`/query`), `?` excluded.
    pub path: String,
    /// The raw query string (`a=b&c=d`), empty when absent.
    pub query: String,
    /// False for `HTTP/1.0`.
    pub http11: bool,
    /// Keep-alive after this exchange (`Connection` header applied to
    /// the version default).
    pub keep_alive: bool,
    /// True when the client sent `Expect: 100-continue`.
    pub expect_continue: bool,
    /// The request body (empty unless `Content-Length` said
    /// otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a `key=value` pair in the query string (first match;
    /// no percent-decoding — the serving protocol never needs it).
    pub fn param<'a>(&'a self, key: &str) -> Option<&'a str> {
        query_param(&self.query, key)
    }
}

/// Looks up `key` in a raw `a=b&c=d` query string.
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// The parsed head, before the body has necessarily arrived.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    query: String,
    http11: bool,
    keep_alive: bool,
    expect_continue: bool,
    content_length: usize,
    /// Bytes the head consumed (request line + headers + blank line).
    consumed: usize,
}

/// Incremental parse result: `NeedMore` until the buffer holds a full
/// request, then the request plus how many buffer bytes it consumed
/// (pipelining = the caller drains `consumed` and parses again).
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request (and is still
    /// within limits).
    NeedMore,
    /// A complete request and the bytes it consumed from the buffer.
    Complete(Request, usize),
}

/// Tries to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, ParseError> {
    let head = match parse_head(buf, limits)? {
        Some(h) => h,
        None => return Ok(Parsed::NeedMore),
    };
    let total = head.consumed + head.content_length;
    if buf.len() < total {
        return Ok(Parsed::NeedMore);
    }
    let body = buf[head.consumed..total].to_vec();
    Ok(Parsed::Complete(
        Request {
            method: head.method,
            path: head.path,
            query: head.query,
            http11: head.http11,
            keep_alive: head.keep_alive,
            expect_continue: head.expect_continue,
            body,
        },
        total,
    ))
}

/// True once the buffer holds the full head but the body is still in
/// flight **and** the client asked for `100 Continue` — the caller
/// should send the interim response to unblock it.
pub fn wants_continue(buf: &[u8], limits: &Limits) -> bool {
    matches!(parse_head(buf, limits), Ok(Some(h)) if h.expect_continue
        && buf.len() < h.consumed + h.content_length)
}

fn parse_head(buf: &[u8], limits: &Limits) -> Result<Option<Head>, ParseError> {
    // Find the blank line within the head budget; a buffer that grew
    // past the budget without one is a hostile head, not "need more".
    let window = &buf[..buf.len().min(limits.max_head_bytes)];
    let head_end = match find_double_crlf(window) {
        Some(i) => i,
        None if buf.len() >= limits.max_head_bytes => return Err(ParseError::HeadTooLarge),
        None => return Ok(None),
    };
    let head = &buf[..head_end];
    let head_str = std::str::from_utf8(head).map_err(|_| ParseError::BadHeader)?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;

    // METHOD SP target SP HTTP/1.x — exactly three fields.
    let mut fields = request_line.split(' ');
    let (method, target, version) = match (fields.next(), fields.next(), fields.next()) {
        (Some(m), Some(t), Some(v)) if fields.next().is_none() => (m, t, v),
        _ => return Err(ParseError::BadRequestLine),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::BadRequestLine);
    }
    if !target.starts_with('/') {
        return Err(ParseError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(ParseError::UnsupportedVersion),
        _ => return Err(ParseError::BadRequestLine),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11; // version default; header overrides
    let mut expect_continue = false;
    let mut header_count = 0usize;
    for line in lines {
        header_count += 1;
        if header_count > limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
        {
            return Err(ParseError::BadHeader);
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| ParseError::BadContentLength)
                .and_then(|n: u64| usize::try_from(n).map_err(|_| ParseError::BadContentLength))?;
            // Duplicates must agree (RFC 9110 §8.6 smuggling defense).
            if content_length.is_some_and(|prev| prev != n) {
                return Err(ParseError::BadContentLength);
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    Ok(Some(Head {
        method: method.to_string(),
        path,
        query,
        http11,
        keep_alive,
        expect_continue,
        content_length,
        consumed: head_end + 4,
    }))
}

/// Byte offset of the first `\r\n\r\n`, i.e. the length of the head
/// *excluding* the terminator.
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serializes one response (status line, supplied headers,
/// `Content-Length`, `Connection`, blank line, body) into a byte
/// vector ready for one `write_all`.
pub fn encode_response(
    status: u16,
    reason: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(b"Content-Type: application/json\r\n");
    for (k, v) in headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(if keep_alive {
        b"Connection: keep-alive\r\n"
    } else {
        b"Connection: close\r\n"
    });
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// The interim `100 Continue` response bytes.
pub const CONTINUE_100: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> Request {
        match parse_request(bytes, &Limits::default()).expect("must parse") {
            Parsed::Complete(r, consumed) => {
                assert_eq!(consumed, bytes.len());
                r
            }
            Parsed::NeedMore => panic!("expected a complete request"),
        }
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let r = parse_ok(b"GET /query?region=0,0,1,1&tokens=3 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.param("region"), Some("0,0,1,1"));
        assert_eq!(r.param("tokens"), Some("3"));
        assert_eq!(r.param("absent"), None);
        assert!(r.http11 && r.keep_alive);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse_ok(b"POST /push HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn incremental_need_more_then_complete() {
        let full = b"POST /push HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let limits = Limits::default();
        for cut in 0..full.len() {
            match parse_request(&full[..cut], &limits).expect("prefixes never error") {
                Parsed::NeedMore => {}
                Parsed::Complete(..) => panic!("complete at {cut} of {}", full.len()),
            }
        }
        assert!(matches!(
            parse_request(full, &limits),
            Ok(Parsed::Complete(..))
        ));
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let Parsed::Complete(r, consumed) = parse_request(two, &Limits::default()).unwrap() else {
            panic!("first request must complete");
        };
        assert_eq!(r.path, "/a");
        let Parsed::Complete(r2, c2) = parse_request(&two[consumed..], &Limits::default()).unwrap()
        else {
            panic!("second request must complete");
        };
        assert_eq!(r2.path, "/b");
        assert_eq!(consumed + c2, two.len());
    }

    #[test]
    fn typed_rejections() {
        let l = Limits::default();
        let cases: &[(&[u8], ParseError)] = &[
            (b"GARBAGE\r\n\r\n", ParseError::BadRequestLine),
            (b"GET /\r\n\r\n", ParseError::BadRequestLine),
            (b"GET / HTTP/1.1 extra\r\n\r\n", ParseError::BadRequestLine),
            (b"G@T / HTTP/1.1\r\n\r\n", ParseError::BadRequestLine),
            (b"GET noslash HTTP/1.1\r\n\r\n", ParseError::BadRequestLine),
            (b"GET / HTTP/2.0\r\n\r\n", ParseError::UnsupportedVersion),
            (b"GET / FTP/1.1\r\n\r\n", ParseError::BadRequestLine),
            (
                b"GET / HTTP/1.1\r\nno colon here\r\n\r\n",
                ParseError::BadHeader,
            ),
            (
                b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
                ParseError::BadHeader,
            ),
            (b"GET / HTTP/1.1\r\n: empty\r\n\r\n", ParseError::BadHeader),
            (
                b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
                ParseError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
                ParseError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                ParseError::UnsupportedTransferEncoding,
            ),
        ];
        for (bytes, want) in cases {
            let got = parse_request(bytes, &l).expect_err(&format!(
                "{:?} must be rejected",
                String::from_utf8_lossy(bytes)
            ));
            assert_eq!(&got, want, "{:?}", String::from_utf8_lossy(bytes));
        }
    }

    #[test]
    fn duplicate_content_length_must_agree() {
        let r = parse_ok(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn limits_are_enforced() {
        let l = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        // A head that can never finish within the budget.
        let long = vec![b'a'; 80];
        let mut buf = b"GET / HTTP/1.1\r\nX: ".to_vec();
        buf.extend_from_slice(&long);
        assert_eq!(
            parse_request(&buf, &l).unwrap_err(),
            ParseError::HeadTooLarge
        );
        // Too many headers.
        let l2 = Limits {
            max_headers: 2,
            ..Limits::default()
        };
        let req = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert_eq!(
            parse_request(req, &l2).unwrap_err(),
            ParseError::TooManyHeaders
        );
        // Declared body too large — rejected from the *declaration*.
        let l3 = Limits {
            max_body_bytes: 10,
            ..Limits::default()
        };
        let req = b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n";
        assert_eq!(
            parse_request(req, &l3).unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn connection_and_version_defaults() {
        let r = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.http11 && !r.keep_alive);
        let r = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive);
        let r = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
    }

    #[test]
    fn expect_continue_is_flagged() {
        let head = b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 3\r\n\r\n";
        assert!(wants_continue(head, &Limits::default()));
        let mut full = head.to_vec();
        full.extend_from_slice(b"abc");
        assert!(!wants_continue(&full, &Limits::default()));
        let r = parse_ok(&full);
        assert!(r.expect_continue);
        assert_eq!(r.body, b"abc");
    }

    #[test]
    fn response_encoding_roundtrips_the_essentials() {
        let bytes = encode_response(200, "OK", &[("Retry-After", "1")], b"{}", true);
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n{}"));
    }
}
