//! Adaptive query coalescing: group-commit batching over
//! [`QueryEngine::search_batch`].
//!
//! Concurrent `/query` requests land in one shared queue. The first
//! arrival becomes the **leader**: it drains the queue (up to
//! the configured `max_batch`) and dispatches the whole batch through the
//! engine's work-stealing `search_batch`, which amortizes the
//! snapshot clone, per-worker `QueryContext` reuse and delta-overlay
//! fan-out across every query in the batch. Requests that arrive
//! *while* a batch executes queue up as the next batch — so the batch
//! size adapts to the offered load with no tuned time window: at idle
//! a query dispatches immediately (batch of one, zero added latency);
//! under load batches grow until the queue bound pushes back.
//! This is the group-commit / convoy pattern from write-ahead logging
//! applied to read traffic.
//!
//! Every query in a batch is answered against the engine behind one
//! [`QueryEngine::search_batch`] call — for a `LiveEngine`, one
//! consistent snapshot (generation + staged delta), which is what lets
//! the black-box concurrency tests reuse the `live_ingest.rs`
//! two-legal-snapshots oracle unchanged across the network boundary;
//! for a `ShardedEngine`, one consistent per-shard combination.

use seal_core::{Query, QueryEngine, SearchResult};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Poison-recovering lock: the serving tier must not panic
/// (`panic-surface` invariant), and every critical section in this
/// module is a handful of queue/option field operations that cannot
/// themselves panic — so a poisoned mutex can only mean *another*
/// slot's panic unwound elsewhere, and the protected data is still
/// consistent. Taking it as-is keeps the convoy draining instead of
/// cascading the panic into every parked request.
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One waiting request's result cell.
struct Slot {
    result: Mutex<Option<SearchResult>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, r: SearchResult) {
        *relock(&self.result) = Some(r);
        self.ready.notify_one();
    }

    fn wait(&self) -> SearchResult {
        let mut guard = relock(&self.result);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct BatchState {
    pending: VecDeque<(Query, Arc<Slot>)>,
    /// True while some thread is dispatching batches; new arrivals
    /// enqueue and wait instead of racing to dispatch singletons.
    leader_active: bool,
}

/// The submission outcome when the queue is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

/// Shared query-coalescing front end over any [`QueryEngine`]. See
/// the [module docs](self) for the protocol.
pub struct Batcher {
    engine: Arc<dyn QueryEngine>,
    state: Mutex<BatchState>,
    /// Upper bound on one dispatched batch (bounds per-query latency
    /// under overload: a request waits at most ⌈queue/max_batch⌉
    /// dispatches).
    max_batch: usize,
    /// Queue bound: submissions beyond it are refused with [`Busy`]
    /// (the server turns that into `503 Retry-After`).
    max_queued: usize,
    /// Worker budget handed to `search_batch` (0 = one per core).
    threads: usize,
}

impl Batcher {
    /// Creates a batcher over `engine`. `threads` follows the engine
    /// convention (0 = one worker per core).
    pub fn new(
        engine: Arc<dyn QueryEngine>,
        max_batch: usize,
        max_queued: usize,
        threads: usize,
    ) -> Self {
        Batcher {
            engine,
            state: Mutex::new(BatchState {
                pending: VecDeque::new(),
                leader_active: false,
            }),
            max_batch: max_batch.max(1),
            max_queued: max_queued.max(1),
            threads,
        }
    }

    /// Queries currently queued (diagnostics / backpressure probes).
    pub fn queued(&self) -> usize {
        relock(&self.state).pending.len()
    }

    /// Submits one query and blocks until its batch completes.
    /// Returns the result plus the size of the batch that carried it.
    /// `Err(Busy)` when the queue is at capacity — the caller should
    /// shed load, not wait.
    ///
    /// `on_batch` is invoked once per dispatched batch (by whichever
    /// thread led it) with the batch size, so the server can record
    /// coalescing metrics without the batcher depending on them.
    pub fn submit(&self, query: Query, on_batch: &dyn Fn(usize)) -> Result<SearchResult, Busy> {
        let slot = Slot::new();
        {
            let mut s = relock(&self.state);
            if s.pending.len() >= self.max_queued {
                return Err(Busy);
            }
            s.pending.push_back((query, slot.clone()));
            if s.leader_active {
                // A leader exists: it (or its successor loop) will
                // drain us. Wait on our slot.
                drop(s);
                return Ok(slot.wait());
            }
            s.leader_active = true;
        }
        // Leader loop: dispatch batches until the queue is empty. Our
        // own slot is filled by the first iteration (we enqueued
        // before taking leadership), but we keep draining so late
        // followers are never stranded without a leader.
        loop {
            let batch: Vec<(Query, Arc<Slot>)> = {
                let mut s = relock(&self.state);
                if s.pending.is_empty() {
                    s.leader_active = false;
                    break;
                }
                let take = s.pending.len().min(self.max_batch);
                s.pending.drain(..take).collect()
            };
            on_batch(batch.len());
            let queries: Vec<Query> = batch.iter().map(|(q, _)| q.clone()).collect();
            let results = self.engine.search_batch(&queries, self.threads);
            for ((_, slot), result) in batch.into_iter().zip(results) {
                slot.fill(result);
            }
        }
        Ok(slot.wait())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seal_core::store::figure1_store;
    use seal_core::{FilterKind, LiveEngine};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn live() -> (Arc<LiveEngine>, seal_core::Query) {
        let (store, q) = figure1_store();
        (
            Arc::new(LiveEngine::new(Arc::new(store), FilterKind::Token)),
            q,
        )
    }

    #[test]
    fn single_submission_matches_direct_search() {
        let (live, q) = live();
        let batcher = Batcher::new(live.clone(), 64, 256, 1);
        let direct = live.search(&q).sorted().answers;
        let got = batcher.submit(q, &|_| {}).unwrap().sorted().answers;
        assert_eq!(got, direct);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_all_answer() {
        let (live, q) = live();
        let batcher = Arc::new(Batcher::new(live.clone(), 64, 256, 2));
        let expect = live.search(&q).sorted().answers;
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let batcher = batcher.clone();
                let q = q.clone();
                let max_seen = max_seen.clone();
                let expect = expect.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        let r = batcher
                            .submit(q.clone(), &|n| {
                                max_seen.fetch_max(n, Ordering::Relaxed);
                            })
                            .unwrap();
                        assert_eq!(r.sorted().answers, expect);
                    }
                });
            }
        });
        // Not asserting coalescing happened (single-core boxes may
        // serialize perfectly), only that it never exceeded the cap.
        assert!(max_seen.load(Ordering::Relaxed) <= 64);
    }

    #[test]
    fn queue_bound_sheds_load() {
        let (live, q) = live();
        // max_queued = 1: a second submission while one is queued
        // must be refused, not deadlock.
        let batcher = Arc::new(Batcher::new(live, 1, 1, 1));
        // Serial submissions always fit (queue drains in between).
        for _ in 0..3 {
            assert!(batcher.submit(q.clone(), &|_| {}).is_ok());
        }
    }

    #[test]
    fn max_batch_bounds_each_dispatch() {
        let (live, q) = live();
        let batcher = Arc::new(Batcher::new(live, 2, 256, 1));
        let ok = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let batcher = batcher.clone();
                let q = q.clone();
                let ok = ok.clone();
                scope.spawn(move || {
                    let r = batcher.submit(q, &|n| assert!(n <= 2, "batch {n} over cap"));
                    if r.is_ok() {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8, "no submission lost");
    }
}
