//! Fixture-corpus self-test.
//!
//! The corpus under `crates/lint/fixtures/` has one top-level
//! directory per rule (underscores for the rule name's hyphens). Every
//! `.rs` file inside carries a `bad`/`ok` marker in its path: `bad*`
//! files must produce at least one diagnostic of the directory's rule,
//! `ok*` files must produce none at all. Directory shape stands in for
//! workspace shape — `panic_surface/server/src/` replicates the
//! serving-tier scope, `*/src/lib.rs` replicates a crate root — so the
//! path-scoped rules see the same cues they see in the real tree.

use seal_lint::{lint_source, lint_workspace, Diag, RULES};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read fixture dir")
        .map(|e| e.expect("fixture dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `(rule, file, is_bad)` for every fixture file in the corpus.
fn corpus() -> Vec<(String, PathBuf, bool)> {
    let root = fixture_root();
    let mut out = Vec::new();
    let mut dirs: Vec<PathBuf> = fs::read_dir(&root)
        .expect("read fixtures/")
        .map(|e| e.expect("fixtures entry").path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let rule = dir
            .file_name()
            .expect("fixture dir name")
            .to_string_lossy()
            .replace('_', "-");
        assert!(
            RULES.contains(&rule.as_str()),
            "fixture directory {} does not name a known rule",
            dir.display()
        );
        let mut files = Vec::new();
        rs_files(&dir, &mut files);
        assert!(!files.is_empty(), "empty fixture dir {}", dir.display());
        for f in files {
            let rel = f.strip_prefix(&root).expect("fixture under root");
            let marked_bad = rel
                .components()
                .any(|c| c.as_os_str().to_string_lossy().starts_with("bad"));
            let marked_ok = rel
                .components()
                .any(|c| c.as_os_str().to_string_lossy().starts_with("ok"));
            assert!(
                marked_bad ^ marked_ok,
                "fixture {} must carry exactly one bad/ok path marker",
                rel.display()
            );
            out.push((rule.clone(), f, marked_bad));
        }
    }
    out
}

fn diags_for(file: &Path) -> Vec<Diag> {
    let src = fs::read_to_string(file).expect("read fixture");
    lint_source(&file.to_string_lossy(), &src)
}

#[test]
fn every_rule_has_positive_and_negative_fixtures() {
    for rule in RULES {
        let (mut bad, mut ok) = (0, 0);
        for (r, _, is_bad) in corpus() {
            if r == *rule {
                if is_bad {
                    bad += 1;
                } else {
                    ok += 1;
                }
            }
        }
        assert!(bad > 0, "rule {rule} has no positive (bad) fixture");
        assert!(ok > 0, "rule {rule} has no negative (ok) fixture");
    }
}

#[test]
fn bad_fixtures_trigger_their_rule() {
    for (rule, file, is_bad) in corpus() {
        if !is_bad {
            continue;
        }
        let diags = diags_for(&file);
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{} should trigger {rule}, got: {:?}",
            file.display(),
            diags.iter().map(Diag::render).collect::<Vec<_>>()
        );
    }
}

#[test]
fn ok_fixtures_are_completely_clean() {
    for (_, file, is_bad) in corpus() {
        if is_bad {
            continue;
        }
        let diags = diags_for(&file);
        assert!(
            diags.is_empty(),
            "{} should be clean, got: {:?}",
            file.display(),
            diags.iter().map(Diag::render).collect::<Vec<_>>()
        );
    }
}

/// The CLI contract CI relies on: exit 1 when diagnostics exist,
/// exit 0 when clean.
#[test]
fn cli_exit_codes_match_fixture_polarity() {
    let bin = env!("CARGO_BIN_EXE_seal-lint");
    for (_, file, is_bad) in corpus() {
        let status = std::process::Command::new(bin)
            .arg(&file)
            .status()
            .expect("run seal-lint");
        if is_bad {
            assert_eq!(
                status.code(),
                Some(1),
                "seal-lint should exit 1 on {}",
                file.display()
            );
        } else {
            assert_eq!(
                status.code(),
                Some(0),
                "seal-lint should exit 0 on {}",
                file.display()
            );
        }
    }
}

/// The real tree must stay clean — this is the same check the CI step
/// runs, kept as a test so `cargo test` alone catches regressions.
#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root).expect("scan workspace");
    assert!(
        diags.is_empty(),
        "workspace must be seal-lint clean:\n{}",
        diags
            .iter()
            .map(Diag::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
