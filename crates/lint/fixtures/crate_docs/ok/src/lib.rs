//! Negative fixture for `crate-docs`: crate root with a `//!` header
//! and the `missing_docs` warning gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Adds two numbers.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
