//! Negative fixture for `unsafe-forbid`: a compliant crate root —
//! forbid attribute present, no `unsafe` anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Adds two numbers.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
