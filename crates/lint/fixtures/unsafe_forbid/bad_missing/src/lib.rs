//! Positive fixture for `unsafe-forbid`: a crate root (path ends in
//! `src/lib.rs`) without `#![forbid(unsafe_code)]`. The doc header and
//! `warn(missing_docs)` are present so only the forbid rule fires.

#![warn(missing_docs)]

/// Adds two numbers.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
