//! Positive fixture for `unsafe-forbid`: the forbid attribute is
//! present, but an `unsafe` block appears anyway (in a real build
//! rustc would reject this; the lint reports it with a pointer to the
//! arena-safety rationale instead of a bare compile error).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads the first byte without a bounds check.
pub fn first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
