// Negative fixture for `panic-surface`: the same request path written
// with typed errors — parse failures become a value the caller can map
// to a 400, and bounds are clamped instead of asserted.
fn parse_limit(q: &str) -> Result<usize, String> {
    q.parse().map_err(|e| format!("limit: {e}"))
}

fn clamp_limit(n: usize) -> usize {
    n.min(1024)
}

fn route(body: &str) -> Result<String, String> {
    let n = parse_limit(body.trim())?;
    Ok(format!("{}", clamp_limit(n)))
}
