// Positive fixture for `panic-surface`: request-path code in a
// `server/src/` file reaching for `.unwrap()`, `.expect()` and
// `panic!` — any of these turns a malformed request into a dead
// connection instead of a 4xx.
fn parse_limit(q: &str) -> usize {
    q.parse().unwrap()
}

fn route(body: &str) -> String {
    let n: usize = body.trim().parse().expect("bad body");
    if n > 1024 {
        panic!("request too large");
    }
    format!("{n}")
}
