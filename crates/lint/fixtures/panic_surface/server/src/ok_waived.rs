// Negative fixture for `panic-surface`: a justified waiver on the line
// above the panic site suppresses the diagnostic (and counts as used,
// so `waiver-discipline` stays quiet too).
fn spawn_and_join() -> i32 {
    let h = std::thread::spawn(|| 7);
    // seal-lint: allow(panic-surface) — joined thread runs an infallible closure; a panic here is a harness bug that must stay loud
    h.join().expect("worker thread")
}
