// Negative fixture for `float-total-order`: `f64::total_cmp` is the
// sanctioned way to order floats, and *defining* `partial_cmp` in a
// `PartialOrd` impl is a declaration, not an ordering call site.
fn rank_by_weight(mut ids: Vec<u32>, weight: impl Fn(u32) -> f64) -> Vec<u32> {
    ids.sort_by(|a, b| weight(*b).total_cmp(&weight(*a)).then(a.cmp(b)));
    ids
}

struct Score(f64);

impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
