// Positive fixture for `float-total-order`: the pre-fix
// `crates/text/src/order.rs` descending weight sort. `partial_cmp`
// returns `None` for NaN, so the `unwrap_or(Equal)` fallback makes the
// comparator inconsistent (NaN "equal" to everything) and breaks the
// total-order contract `sort_by` relies on.
fn rank_by_weight(mut ids: Vec<u32>, weight: impl Fn(u32) -> f64) -> Vec<u32> {
    ids.sort_by(|a, b| {
        weight(*b)
            .partial_cmp(&weight(*a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ids
}
