// Positive fixture for `float-total-order`: the pre-fix
// `crates/datagen/src/twitter.rs` median computation — `.unwrap()` on
// `partial_cmp` turns a single NaN into a panic inside `sort_by`.
fn median(mut areas: Vec<f64>) -> f64 {
    areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    areas[areas.len() / 2]
}
