// Negative fixture for `bench-parallelism-recorded`: the bench
// records `available_parallelism` in its emitted JSON, so the
// recorded baseline states the machine shape it was measured on.
fn main() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let qps = 123.4_f64;
    println!("{{\"bench\": \"probe\", \"cores\": {cores}, \"qps\": {qps}}}");
}
