// Positive fixture for `bench-parallelism-recorded`: a bench binary
// whose JSON output never states the core count it ran under — its
// recorded baseline cannot be compared across machine shapes.
fn main() {
    let qps = 123.4_f64;
    println!("{{\"bench\": \"probe\", \"qps\": {qps}}}");
}
