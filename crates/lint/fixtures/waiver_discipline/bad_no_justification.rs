// Positive fixture for `waiver-discipline`: a waiver with no
// justification text after the rule list. Unjustified waivers are
// rejected AND do not suppress — the float diagnostic below still
// fires alongside the waiver-discipline one.
fn sort_scores(v: &mut [f64]) {
    // seal-lint: allow(float-total-order)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
