// Positive fixture for `waiver-discipline`: the waiver names a rule
// that does not exist, so it can never suppress anything — usually a
// typo that silently disarms the intended waiver.
fn noop() {
    // seal-lint: allow(float-ordering) — meant float-total-order, rule name is wrong
    let _ = 1 + 1;
}
