// Negative fixture for `waiver-discipline`: a justified waiver that
// actually suppresses a diagnostic on the next line is in order — no
// diagnostics at all from this file.
fn sort_scores(v: &mut [f64]) {
    // seal-lint: allow(float-total-order) — fixture demonstrating a used, justified waiver; real code should reach for total_cmp instead
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
