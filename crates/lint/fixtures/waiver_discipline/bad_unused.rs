// Positive fixture for `waiver-discipline`: a well-formed, justified
// waiver that suppresses nothing — the code it once excused is gone,
// so the waiver must go too (stale waivers hide future regressions).
fn nothing_to_waive() -> u32 {
    // seal-lint: allow(panic-surface) — this line used to join a thread, but no longer does
    40 + 2
}
