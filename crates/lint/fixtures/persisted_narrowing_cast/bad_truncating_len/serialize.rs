// Positive fixture for `persisted-narrowing-cast`: a length written
// into an on-disk u32 field through a bare `as` cast silently wraps
// for oversized inputs — producing a valid-CRC container that lies
// about its own contents.
pub fn encode_section(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}
