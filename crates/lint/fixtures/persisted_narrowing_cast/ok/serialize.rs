// Negative fixture for `persisted-narrowing-cast`: the sanctioned
// conversions on a persisted-format path — `try_from` with a
// justified `expect` on the save side, a waived lossless widening on
// the load side, and `as u64` widenings (always exempt).
pub fn encode_section(payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("section payload fits u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

pub fn decode_len(header: [u8; 4]) -> usize {
    // seal-lint: allow(persisted-narrowing-cast) — u32 → usize is lossless on 64-bit targets
    u32::from_le_bytes(header) as usize
}

pub fn file_offset(cursor: usize) -> u64 {
    cursor as u64
}
