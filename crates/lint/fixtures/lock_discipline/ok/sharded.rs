// Negative fixture for `lock-discipline`: the sanctioned shape.
// Locks are taken in protocol order (route before shard state), the
// needed ids are copied out, and every guard is dropped before the
// probe-path call runs.
fn do_search(&self, q: &Query) -> SearchResult {
    let route = self.route_lock();
    let state = self.shards[route.assignment[0]].state.lock().expect("state");
    let target = state.generation;
    drop(state);
    drop(route);
    self.engines[target].search(q)
}
