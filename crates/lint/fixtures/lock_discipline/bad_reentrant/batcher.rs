// Positive fixture for `lock-discipline`: re-acquiring a lock whose
// guard is still live in the same scope — a guaranteed self-deadlock
// with `std::sync::Mutex` (it is not reentrant). Uses the server's
// poison-recovering `relock` helper, which the rule also tracks.
fn queued_twice(&self) -> usize {
    let a = relock(&self.state);
    let b = relock(&self.state);
    a.pending.len() + b.pending.len()
}
