// Positive fixture for `lock-discipline`: lock order inversion. The
// protocol is refresh_gate -> route -> shard state; taking `route`
// while already holding a shard `state` guard deadlocks against any
// thread walking the sanctioned direction.
fn rebalance(&self) {
    let state = self.shards[0].state.lock().expect("state");
    let route = self.route_lock();
    route.assignment.swap(0, 1);
    drop(route);
    drop(state);
}
