// Positive fixture for `lock-discipline`: the route guard stays live
// across a probe-path call. The probe can block for milliseconds, and
// every writer (add/remove/refresh) serializes behind `route` — so
// this turns one slow query into a stall for all mutation.
fn do_search(&self, q: &Query) -> SearchResult {
    let route = self.route.lock().expect("route");
    let shard = &self.shards[route.assignment[0]];
    // Probe while `route` is held: flagged.
    shard.engine.search(q)
}
