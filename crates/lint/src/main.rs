//! `seal-lint` — CLI for the workspace invariant checker.
//!
//! ```text
//! seal-lint                      # lint the workspace (root auto-detected)
//! seal-lint --root <dir>         # lint another tree
//! seal-lint <file.rs> …          # lint specific files
//! seal-lint --list-rules         # print the rule table
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O
//! error — so CI can gate on it directly.

#![forbid(unsafe_code)]

use seal_lint::{anchor, lint_paths, lint_workspace, rationale, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list-rules" => {
                for r in RULES {
                    println!("{r:<20} {}", rationale(r));
                    println!("{:<20} docs/ARCHITECTURE.md#{}", "", anchor(r));
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(d) => root = Some(PathBuf::from(d)),
                    None => return usage("--root needs a directory"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "seal-lint: workspace invariant checker\n\
                     usage: seal-lint [--root <dir>] [--list-rules] [<file.rs> ...]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return usage(&format!("unknown flag {flag}")),
            path => files.push(PathBuf::from(path)),
        }
        i += 1;
    }

    let result = if files.is_empty() {
        let root = root.unwrap_or_else(detect_root);
        lint_workspace(&root)
    } else {
        lint_paths(&files)
    };
    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("seal-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if diags.is_empty() {
        println!("seal-lint: clean");
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        println!(
            "seal-lint: {} diagnostic{} — fix, or waive inline with \
             `// seal-lint: allow(<rule>) — <justification>`",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest when run
/// via `cargo run -p seal-lint`, else the current directory.
fn detect_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("seal-lint: {msg}\nusage: seal-lint [--root <dir>] [--list-rules] [<file.rs> ...]");
    ExitCode::from(2)
}
