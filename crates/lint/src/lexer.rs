//! A minimal Rust lexer — just enough structure for token-stream lint
//! rules.
//!
//! The zero-registry constraint rules out `syn`/`proc-macro2`, and the
//! rules in [`crate::rules`] only need a faithful *token* stream: the
//! one hard requirement is that text inside string literals, character
//! literals and comments never leaks into the identifier stream (a
//! `"partial_cmp"` in a diagnostic message is not a float comparison).
//! The tricky cases a naive regex gets wrong and this lexer gets
//! right:
//!
//! * raw strings with arbitrary `#` fences (`r#"…"#`, `br##"…"##`),
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * nested block comments (`/* /* */ */`),
//! * numeric literals with exponents and method calls on floats
//!   (`1.0e-9`, `2.0.sqrt()`, `0..n` ranges).
//!
//! Comments are not discarded: they come back in a side channel with
//! line numbers, because the waiver mechanism (`// seal-lint:
//! allow(...)`) and the crate-doc-header rule both read them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `unwrap`, `let`, `r#type`).
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, …). Multi-char
    /// operators arrive as consecutive punct tokens.
    Punct(char),
    /// A string / char / numeric literal (payload deliberately
    /// dropped; rules only care that it is opaque).
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The identifier text (empty for non-ident tokens).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its source line and flavor.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the delimiters (`//`, `//!`, `/* */` …).
    pub text: String,
    /// `//!` or `/*! … */` — inner doc (crate/module header).
    pub inner_doc: bool,
    /// True when a token precedes the comment on the same line (a
    /// trailing comment annotates its own line; a standalone comment
    /// annotates the line below).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments stripped.
    pub toks: Vec<Tok>,
    /// The comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs (string to EOF, unclosed block
/// comment) are tolerated: the remainder is swallowed as one literal /
/// comment, which is the useful behavior for linting a file that may
/// not even compile.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        last_tok_line: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Line of the most recent token (to classify trailing comments).
    last_tok_line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.last_tok_line = line;
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_literal();
                    self.push_tok(TokKind::Literal, String::new(), line);
                }
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                c => {
                    self.bump();
                    self.push_tok(TokKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // //
        let inner_doc = self.peek(0) == Some('!');
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            inner_doc,
            trailing: self.last_tok_line == line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // /*
        let inner_doc = self.peek(0) == Some('!');
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            inner_doc,
            trailing: self.last_tok_line == line,
        });
    }

    /// Consumes a string body after the opening `"`.
    fn string_literal(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'`. Returns
    /// false when the `r`/`b` starts a plain identifier instead
    /// (nothing consumed in that case).
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let (prefix_len, raw) = match (self.peek(0), self.peek(1)) {
            (Some('r'), _) => (1, true),
            (Some('b'), Some('r')) => (2, true),
            (Some('b'), _) => (1, false),
            _ => return false,
        };
        // Count the # fence (raw strings only).
        let mut hashes = 0usize;
        while raw && self.peek(prefix_len + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(prefix_len + hashes) {
            Some('"') => {
                for _ in 0..prefix_len + hashes + 1 {
                    self.bump();
                }
                if raw {
                    self.raw_string_body(hashes);
                } else {
                    // b"…" — ordinary escapes apply.
                    self.string_literal();
                }
                self.push_tok(TokKind::Literal, String::new(), line);
                true
            }
            Some('\'') if !raw && hashes == 0 => {
                // b'x' byte char.
                self.bump();
                self.bump();
                self.char_body();
                self.push_tok(TokKind::Literal, String::new(), line);
                true
            }
            _ => false,
        }
    }

    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// Consumes a char-literal body after the opening `'`.
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => return,
                _ => {}
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // 'a' is a char; 'a (not followed by a closing quote) is a
        // lifetime; '\n' etc. are chars.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphanumeric() => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_tok(TokKind::Lifetime, text, line);
        } else {
            self.bump();
            self.char_body();
            self.push_tok(TokKind::Literal, String::new(), line);
        }
    }

    fn number(&mut self, line: u32) {
        // Integer part (also covers 0x…, 0b…, digit separators).
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fraction: a '.' followed by a digit (NOT `0..n` or `1.max()`).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else if (c == '+' || c == '-')
                    && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E'))
                {
                    // Exponent sign: 1.5e-9.
                    self.bump();
                } else {
                    break;
                }
            }
        } else if (self.peek(0) == Some('e') || self.peek(0) == Some('E'))
            && matches!(self.peek(1), Some('+' | '-'))
        {
            self.bump();
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        self.push_tok(TokKind::Literal, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r##"
            // partial_cmp in a comment
            /* and unwrap in /* a nested */ block */
            let msg = "calls partial_cmp and unwrap";
            let raw = r#"also "partial_cmp" here"#;
            let b = b"unwrap";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2, "'x' and '\\n'");
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let ids = idents("let a = 1.0e-9; let b = 2.0.sqrt(); for i in 0..n {}");
        assert!(ids.contains(&"sqrt".to_string()));
        assert!(ids.contains(&"n".to_string()));
    }

    #[test]
    fn line_numbers_track() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comment_side_channel() {
        let lexed = lex("//! crate docs\nlet x = 1; // trailing\n// standalone\n");
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].inner_doc);
        assert!(!lexed.comments[0].trailing);
        assert!(lexed.comments[1].trailing);
        assert!(!lexed.comments[2].trailing);
    }

    #[test]
    fn raw_ident_is_an_ident() {
        // r#type: the r# prefix has no quote, so it lexes as idents.
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"r".to_string()) || ids.contains(&"type".to_string()));
    }
}
