//! The driver: file discovery, the waiver mechanism, and the
//! public entry points the binary and the tests share.
//!
//! # Waivers
//!
//! A diagnostic is suppressed by an inline comment of the form
//!
//! ```text
//! // seal-lint: allow(rule-name) — why this exception is sound
//! ```
//!
//! either trailing on the offending line or standalone on the line
//! above it. Several rules can be named (`allow(a, b)`). The
//! justification is **mandatory** — the whole point of the mechanism
//! is that every exception is written down next to the code it
//! excuses — and the `waiver-discipline` rule closes the loop: a
//! waiver naming an unknown rule, missing its justification, or
//! suppressing nothing is itself an error (so stale waivers cannot
//! rot in place). Waiver-discipline diagnostics cannot be waived.

use crate::lexer::{lex, Comment};
use crate::rules::{check_file, Diag, RULES};
use std::io;
use std::path::{Path, PathBuf};

/// One parsed waiver comment.
#[derive(Debug)]
struct Waiver {
    line: u32,
    rules: Vec<String>,
    justified: bool,
    /// Rule names not in [`RULES`].
    unknown: Vec<String>,
    used: bool,
}

/// Extracts waivers from a file's comments. Returns the waivers plus
/// immediate syntax diagnostics (malformed `allow(...)`).
fn parse_waivers(path: &str, comments: &[Comment]) -> (Vec<Waiver>, Vec<Diag>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        // Only a comment that *is* a waiver counts — prose that merely
        // mentions the syntax (docs, examples) must not parse as one.
        let Some(rest) = c.text.trim_start().strip_prefix("seal-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            diags.push(Diag {
                file: path.to_string(),
                line: c.line,
                rule: "waiver-discipline",
                msg: "malformed waiver: expected `seal-lint: allow(<rule>) — <justification>`"
                    .to_string(),
            });
            continue;
        };
        let (names, after) = inner;
        let rules: Vec<String> = names
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let unknown: Vec<String> = rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .cloned()
            .collect();
        let justification = after
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        waivers.push(Waiver {
            line: c.line,
            rules,
            justified: !justification.is_empty(),
            unknown,
            used: false,
        });
    }
    (waivers, diags)
}

/// Lints one file's source: runs every rule, applies waivers, then
/// audits the waivers themselves.
pub fn lint_source(path: &str, src: &str) -> Vec<Diag> {
    let lexed = lex(src);
    let raw = check_file(path, &lexed);
    let (mut waivers, mut out) = parse_waivers(path, &lexed.comments);
    for d in raw {
        let waived = waivers.iter_mut().any(|w| {
            let covers = d.line == w.line || d.line == w.line + 1;
            let names_rule = w.rules.iter().any(|r| r == d.rule);
            if covers && names_rule && w.unknown.is_empty() && w.justified {
                w.used = true;
                true
            } else {
                false
            }
        });
        if !waived {
            out.push(d);
        }
    }
    for w in &waivers {
        for u in &w.unknown {
            out.push(Diag {
                file: path.to_string(),
                line: w.line,
                rule: "waiver-discipline",
                msg: format!(
                    "waiver names unknown rule `{u}` (known: {})",
                    RULES.join(", ")
                ),
            });
        }
        if !w.justified {
            out.push(Diag {
                file: path.to_string(),
                line: w.line,
                rule: "waiver-discipline",
                msg: "waiver has no justification — write down why the exception is sound"
                    .to_string(),
            });
        }
        if w.justified && w.unknown.is_empty() && !w.used {
            out.push(Diag {
                file: path.to_string(),
                line: w.line,
                rule: "waiver-discipline",
                msg: format!(
                    "unused waiver for `{}` — it suppresses nothing on this or the next \
                     line; remove it",
                    w.rules.join(", ")
                ),
            });
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Lints a list of files from disk.
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<Vec<Diag>> {
    let mut out = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        out.extend(lint_source(&p.to_string_lossy(), &src));
    }
    Ok(out)
}

/// Collects the workspace's lintable files: `crates/*/src/**/*.rs`
/// plus the facade root `src/**/*.rs`. Shims are deliberately out of
/// scope (they are stand-ins for external crates, not this codebase),
/// as are `tests/`, `examples/` and benches — the invariants guard the
/// shipped library and serving surfaces.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk_rs(&facade, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diag>> {
    let files = workspace_files(root)?;
    let mut diags = lint_paths(&files)?;
    // Report with root-relative paths so CI output is stable.
    let prefix = format!("{}/", root.to_string_lossy());
    for d in &mut diags {
        if let Some(rel) = d.file.strip_prefix(&prefix) {
            d.file = rel.to_string();
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let trailing = "v.sort_by(|a, b| a.partial_cmp(b)); \
                        // seal-lint: allow(float-total-order) — ordering ints here";
        assert!(lint_source("crates/x/src/a.rs", trailing).is_empty());
        let above = "// seal-lint: allow(float-total-order) — ordering ints here\n\
                     v.sort_by(|a, b| a.partial_cmp(b));";
        assert!(lint_source("crates/x/src/a.rs", above).is_empty());
    }

    #[test]
    fn waiver_without_justification_rejected() {
        let src = "// seal-lint: allow(float-total-order)\n\
                   v.sort_by(|a, b| a.partial_cmp(b));";
        let d = lint_source("crates/x/src/a.rs", src);
        // The violation stands AND the waiver is flagged.
        assert!(d.iter().any(|d| d.rule == "float-total-order"), "{d:?}");
        assert!(d.iter().any(|d| d.rule == "waiver-discipline"), "{d:?}");
    }

    #[test]
    fn unknown_rule_and_unused_waivers_flagged() {
        let unknown = "// seal-lint: allow(no-such-rule) — because\nlet x = 1;";
        let d = lint_source("crates/x/src/a.rs", unknown);
        assert!(d.iter().any(|d| d.rule == "waiver-discipline"));
        let unused = "// seal-lint: allow(float-total-order) — nothing here\nlet x = 1;";
        let d = lint_source("crates/x/src/a.rs", unused);
        assert!(d.iter().any(|d| d.msg.contains("unused waiver")), "{d:?}");
    }

    #[test]
    fn waiver_only_covers_named_rule() {
        let src = "// seal-lint: allow(panic-surface) — wrong rule named\n\
                   v.sort_by(|a, b| a.partial_cmp(b));";
        let d = lint_source("crates/x/src/a.rs", src);
        assert!(d.iter().any(|d| d.rule == "float-total-order"));
    }
}
