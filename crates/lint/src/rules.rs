//! The rule engine: each rule turns one of `docs/ARCHITECTURE.md`'s
//! prose invariants into a token-stream check.
//!
//! Every rule is a heuristic over the [`crate::lexer`] token stream —
//! deliberately so: with no `syn` available the checks trade type-level
//! precision for zero dependencies, and the waiver mechanism
//! (`// seal-lint: allow(<rule>) — <justification>`) is the designed
//! escape hatch for the false positives a token-level view cannot
//! avoid. A waived exception is a *documented* exception, which is the
//! point.
//!
//! | rule | invariant | motivated by |
//! |------|-----------|--------------|
//! | `float-total-order` | floats are ordered with `total_cmp`, never `partial_cmp` | the PR 3 NaN-ordering sweep |
//! | `panic-surface` | no `unwrap`/`expect`/`panic!` in `seal-server`'s non-test code | the PR 7 hostile-input hardening |
//! | `unsafe-forbid` | every crate root carries `#![forbid(unsafe_code)]`; no `unsafe` tokens anywhere | the arena safety story (PRs 1–5) |
//! | `lock-discipline` | refresh-gate → route → shard-state lock order; route/state guards never live across a probe | the PR 4/PR 8 swap protocols |
//! | `crate-docs` | crate roots open with `//!` docs; libraries warn on missing docs | the PR 2 `cargo doc -D warnings` gate |
//! | `persisted-narrowing-cast` | no `as` narrowing on the persisted-format paths (`serialize.rs`, `container.rs`, `persist.rs`) | the PR 10 codec widening |
//! | `bench-parallelism-recorded` | bench binaries record `available_parallelism` in their JSON output | the PR 10 bench comparability audit |
//! | `waiver-discipline` | waivers name real rules, justify themselves, and suppress something | the PR 9 lint gate |
//!
//! See `docs/ARCHITECTURE.md#enforced-invariants-seal-lint` for the
//! full rationale behind each rule.

use crate::lexer::{Lexed, Tok, TokKind};

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Path of the offending file (as given to the driver).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl Diag {
    /// Renders the diagnostic in the `file:line: [rule] msg (anchor)`
    /// shape the CI log shows.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: error[{}]: {} (see docs/ARCHITECTURE.md#{})",
            self.file,
            self.line,
            self.rule,
            self.msg,
            anchor(self.rule)
        )
    }
}

/// Names of every rule, in reporting order.
pub const RULES: &[&str] = &[
    "float-total-order",
    "panic-surface",
    "unsafe-forbid",
    "lock-discipline",
    "crate-docs",
    "persisted-narrowing-cast",
    "bench-parallelism-recorded",
    "waiver-discipline",
];

/// The architecture-doc anchor explaining why a rule exists.
pub fn anchor(rule: &str) -> &'static str {
    match rule {
        "float-total-order" => "float-total-order",
        "panic-surface" => "panic-surface",
        "unsafe-forbid" => "unsafe-forbid",
        "lock-discipline" => "lock-discipline",
        "crate-docs" => "crate-docs",
        "persisted-narrowing-cast" => "persisted-narrowing-cast",
        "bench-parallelism-recorded" => "bench-parallelism-recorded",
        _ => "waiver-discipline",
    }
}

/// One-line rationale per rule (for `--list-rules`).
pub fn rationale(rule: &str) -> &'static str {
    match rule {
        "float-total-order" => {
            "float ordering must use f64::total_cmp — partial_cmp is NaN-unsound (PR 3 bug class)"
        }
        "panic-surface" => {
            "seal-server non-test code must not unwrap/expect/panic! — hostile input gets typed errors (PR 7)"
        }
        "unsafe-forbid" => {
            "every crate root carries #![forbid(unsafe_code)]; no unsafe blocks anywhere (arena safety, PRs 1-5)"
        }
        "lock-discipline" => {
            "refresh-gate -> route -> shard-state lock order; route/state guards never held across a probe (PRs 4/8)"
        }
        "crate-docs" => {
            "crate roots open with //! docs; library roots carry #![warn(missing_docs)] (PR 2 doc gate)"
        }
        "persisted-narrowing-cast" => {
            "no `as` narrowing to u8/u16/u32/usize on the persisted-format paths — counts and offsets cross the disk boundary via try_from or a waived losslessness argument (PR 10)"
        }
        "bench-parallelism-recorded" => {
            "bench binaries must record available_parallelism in their JSON output so recorded baselines state their core count (PR 10)"
        }
        _ => "waivers must name real rules, carry a justification, and actually suppress a diagnostic",
    }
}

/// Runs every applicable rule over one lexed file. Returns *raw*
/// diagnostics — the driver applies waivers afterwards.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Diag> {
    let norm = path.replace('\\', "/");
    let mask = test_mask(&lexed.toks);
    let mut out = Vec::new();
    float_total_order(&norm, lexed, &mut out);
    if norm.contains("server/src/") {
        panic_surface(&norm, lexed, &mask, &mut out);
    }
    unsafe_forbid(&norm, lexed, &mut out);
    let name = norm.rsplit('/').next().unwrap_or(&norm);
    if matches!(name, "sharded.rs" | "live.rs" | "batcher.rs") {
        lock_discipline(&norm, lexed, &mask, &mut out);
    }
    crate_docs(&norm, lexed, &mut out);
    if matches!(name, "serialize.rs" | "container.rs" | "persist.rs") {
        persisted_narrowing_cast(&norm, lexed, &mask, &mut out);
    }
    if norm.contains("/bin/") && name.starts_with("bench_") {
        bench_parallelism_recorded(&norm, lexed, &mut out);
    }
    out
}

/// True for `…/src/lib.rs` and `…/src/main.rs` — the files rustc uses
/// as crate roots, where crate-level inner attributes must live.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs")
}

/// Marks every token inside `#[cfg(test)]` / `#[test]` items, so the
/// panic-surface and lock rules skip test code. An attribute whose
/// idents include both `cfg` and `test` (but not `not`) — or whose
/// only ident is `test` — marks the following item: through the
/// matching `}` of its first block, or through `;` for blockless items.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Collect the attribute's idents up to the matching ']'.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident => idents.push(&toks[j].text),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr =
            (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"))
                || idents.as_slice() == ["test"];
        if !is_test_attr {
            i = j;
            continue;
        }
        // Mark through the item that follows: find its first '{' (then
        // the matching '}') or a ';' before any brace.
        let start = i;
        let mut k = j;
        let mut braces = 0usize;
        let mut end = toks.len();
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => braces += 1,
                TokKind::Punct('}') => {
                    braces = braces.saturating_sub(1);
                    if braces == 0 {
                        end = k + 1;
                        break;
                    }
                }
                TokKind::Punct(';') if braces == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end).skip(start) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// `float-total-order`: any `.partial_cmp(` call is flagged. The
/// workspace convention (established in PR 3 after three NaN-ordering
/// bugs) is that *every* ordering of floats goes through
/// `f64::total_cmp` or a key extracted into a totally-ordered type;
/// `partial_cmp` + `unwrap`/`unwrap_or(Equal)` either panics on NaN or
/// silently breaks sort's total-order contract (UB-adjacent: quicksort
/// on an inconsistent comparator can duplicate/lose elements).
/// Implementing the `PartialOrd` trait (`fn partial_cmp`) is fine —
/// only call sites are flagged.
fn float_total_order(path: &str, lexed: &Lexed, out: &mut Vec<Diag>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if toks[i].is_ident("partial_cmp")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(Diag {
                file: path.to_string(),
                line: toks[i].line,
                rule: "float-total-order",
                msg: "NaN-unsound ordering: call f64::total_cmp (or sort by a total-order \
                      key), not partial_cmp"
                    .to_string(),
            });
        }
    }
}

/// `panic-surface`: in `crates/server/src`, non-test code must not
/// contain `.unwrap()`, `.expect(…)`, or the panicking macros. The
/// serving tier's contract (PR 7) is that every input — however
/// hostile — produces a typed error mapped to an HTTP status, and that
/// internal invariants are either encoded in types or waived with a
/// written unreachability argument.
fn panic_surface(path: &str, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diag>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let flagged = if t.is_ident("unwrap") {
            // `.unwrap()` exactly — unwrap_or / unwrap_or_else are the
            // non-panicking conversions this rule wants instead.
            i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        } else if t.is_ident("expect") {
            i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        } else if matches!(
            t.text.as_str(),
            "panic" | "todo" | "unimplemented" | "unreachable"
        ) && t.kind == TokKind::Ident
        {
            toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        } else {
            false
        };
        if flagged {
            out.push(Diag {
                file: path.to_string(),
                line: t.line,
                rule: "panic-surface",
                msg: format!(
                    "`{}` on the serving tier: return a typed error mapped to an HTTP \
                     status, recover (e.g. PoisonError::into_inner), or waive with an \
                     unreachability argument",
                    t.text
                ),
            });
        }
    }
}

/// `unsafe-forbid`: crate roots must carry `#![forbid(unsafe_code)]`,
/// and no scanned file may contain an `unsafe` token at all. The
/// arenas' safety story (frozen CSR columns probed lock-free by many
/// threads) rests on the compiler's guarantees; the ROADMAP explicitly
/// keeps `unsafe` out even where it would buy speed (parallel splice)
/// until a reviewed exception exists.
fn unsafe_forbid(path: &str, lexed: &Lexed, out: &mut Vec<Diag>) {
    let toks = &lexed.toks;
    if is_crate_root(path) && !has_inner_attr(toks, &["forbid", "unsafe_code"]) {
        out.push(Diag {
            file: path.to_string(),
            line: 1,
            rule: "unsafe-forbid",
            msg: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    for t in toks {
        if t.is_ident("unsafe") {
            out.push(Diag {
                file: path.to_string(),
                line: t.line,
                rule: "unsafe-forbid",
                msg: "`unsafe` is banned workspace-wide; restructure or propose a reviewed \
                      exception"
                    .to_string(),
            });
        }
    }
}

/// True when the token stream contains an inner attribute `#![…]`
/// whose idents include every name in `needles`.
fn has_inner_attr(toks: &[Tok], needles: &[&str]) -> bool {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => idents.push(&toks[j].text),
                    _ => {}
                }
                j += 1;
            }
            if needles.iter().all(|n| idents.contains(n)) {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

/// Lock acquisition order (PR 8's protocol, generalized): a lower rank
/// may be held while taking a higher rank, never the reverse.
fn lock_rank(name: &str) -> u8 {
    match name {
        "refresh_gate" => 0,
        "route" => 1,
        "state" => 2,
        _ => 3,
    }
}

/// Calls that enter the probe / build path. Route and state guards are
/// ns-scale by contract (PR 4: "never held across a probe"); holding
/// one across any of these turns every concurrent reader into a
/// convoy — or deadlocks outright when the callee takes the same lock.
const PROBE_CALLS: &[&str] = &[
    "search",
    "search_batch",
    "search_scored",
    "search_top_k",
    "search_with_ctx",
    "candidates_into",
    "qualifying",
    "qualifying_into",
    "build_next_generation",
    "refresh_via",
    "overlay_delta",
];

/// `lock-discipline`: a brace-depth heuristic over the files that own
/// locks (`sharded.rs`, `live.rs`, `batcher.rs`). Tracks `let g =
/// ….lock()` / `route_lock()` guard bindings until `drop(g)` or scope
/// exit, and flags (a) acquiring a lower-ranked lock while holding a
/// higher-ranked one, (b) re-acquiring a lock already held (self
/// deadlock), (c) a live route/state guard across a probe-path call.
fn lock_discipline(path: &str, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diag>) {
    struct Guard {
        name: String,
        lock: String,
        depth: usize,
    }
    let toks = &lexed.toks;
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // Pending `let` binding: Some(pattern-name) until the statement's `;`.
    let mut pending_let: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Punct(';') => pending_let = None,
            TokKind::Ident => {
                if t.text == "let" {
                    // Bound name: next ident, skipping `mut`; tuple /
                    // struct patterns get a placeholder.
                    let mut j = i + 1;
                    while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    pending_let = Some(match toks.get(j) {
                        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                        _ => "_pattern".to_string(),
                    });
                } else if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    if let Some(name) = toks.get(i + 2).map(|t| t.text.clone()) {
                        guards.retain(|g| g.name != name);
                    }
                } else if is_lock_acquire(toks, i) {
                    let lock = acquired_lock_name(toks, i);
                    let rank = lock_rank(&lock);
                    for g in &guards {
                        if g.lock == lock {
                            out.push(Diag {
                                file: path.to_string(),
                                line: t.line,
                                rule: "lock-discipline",
                                msg: format!(
                                    "re-acquiring `{lock}` while guard `{}` already holds it \
                                     (self deadlock)",
                                    g.name
                                ),
                            });
                        } else if lock_rank(&g.lock) > rank {
                            out.push(Diag {
                                file: path.to_string(),
                                line: t.line,
                                rule: "lock-discipline",
                                msg: format!(
                                    "lock order violation: acquiring `{lock}` while holding \
                                     `{}` — the order is refresh_gate -> route -> shard state",
                                    g.lock
                                ),
                            });
                        }
                    }
                    if let Some(name) = pending_let.take() {
                        guards.push(Guard { name, lock, depth });
                    }
                } else if PROBE_CALLS.contains(&t.text.as_str())
                    && i > 0
                    && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    for g in &guards {
                        if matches!(g.lock.as_str(), "route" | "state") {
                            out.push(Diag {
                                file: path.to_string(),
                                line: t.line,
                                rule: "lock-discipline",
                                msg: format!(
                                    "guard `{}` ({} lock) is live across probe-path call \
                                     `{}` — collect ids under the lock, drop it, then probe",
                                    g.name, g.lock, t.text
                                ),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// True when token `i` is a `.lock(` call, a `route_lock(` helper
/// call, or a `relock(` poison-recovering call — the three ways this
/// codebase acquires a mutex.
fn is_lock_acquire(toks: &[Tok], i: usize) -> bool {
    (toks[i].is_ident("lock")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
        || ((toks[i].is_ident("route_lock") || toks[i].is_ident("relock"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
}

/// The lock's name for ranking: the receiver ident before `.lock()`
/// (`self.state.lock()` → `state`), `route` for `route_lock()`, or
/// the last ident of the argument for `relock(&self.state)`.
fn acquired_lock_name(toks: &[Tok], i: usize) -> String {
    if toks[i].is_ident("route_lock") {
        return "route".to_string();
    }
    if toks[i].is_ident("relock") {
        let mut j = i + 1;
        let mut name = "_unknown".to_string();
        while let Some(t) = toks.get(j) {
            if t.is_punct(')') {
                break;
            }
            if t.kind == TokKind::Ident {
                name = t.text.clone();
            }
            j += 1;
        }
        return name;
    }
    // toks[i-1] is '.', toks[i-2] is the receiver field.
    match toks.get(i.wrapping_sub(2)) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => "_unknown".to_string(),
    }
}

/// Narrowing integer targets a persisted-format cast must not `as`
/// into: anything an oversized in-memory count would silently wrap to
/// on its way into a length/offset field (`u64` stays exempt — every
/// widening to the on-disk field width is lossless).
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "usize"];

/// `persisted-narrowing-cast`: on the files that define the on-disk
/// formats (`serialize.rs`, `container.rs`, `persist.rs`), a bare
/// `as u8/u16/u32/usize` is flagged. A count or offset that crosses
/// the disk boundary through a silent truncation writes a *valid-CRC
/// container that lies about its own contents* — the one corruption
/// class checksums cannot catch. The conversions this codebase wants
/// instead: `try_from` mapped to a typed codec error on the load
/// path, `try_from` + `expect` with an invariant argument on the save
/// path, or a waiver stating why the cast is lossless.
fn persisted_narrowing_cast(path: &str, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diag>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        if toks[i].is_ident("as")
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && NARROWING_TARGETS.contains(&t.text.as_str())
            })
        {
            out.push(Diag {
                file: path.to_string(),
                line: toks[i].line,
                rule: "persisted-narrowing-cast",
                msg: format!(
                    "`as {}` on a persisted-format path can silently truncate a count or \
                     offset behind a valid CRC: use try_from (typed error on load, \
                     justified expect on save), or waive with a losslessness argument",
                    toks[i + 1].text
                ),
            });
        }
    }
}

/// `bench-parallelism-recorded`: every bench binary
/// (`…/bin/bench_*.rs`) must mention `available_parallelism` — the
/// recorded-baseline convention since PR 10 is that each bench JSON
/// states the core count it ran under, because a "regression" measured
/// on a different machine shape is noise, not signal.
fn bench_parallelism_recorded(path: &str, lexed: &Lexed, out: &mut Vec<Diag>) {
    if !lexed
        .toks
        .iter()
        .any(|t| t.is_ident("available_parallelism"))
    {
        out.push(Diag {
            file: path.to_string(),
            line: 1,
            rule: "bench-parallelism-recorded",
            msg: "bench binary never records std::thread::available_parallelism(): put the \
                  core count in the emitted JSON so recorded baselines are comparable"
                .to_string(),
        });
    }
}

/// `crate-docs`: crate roots must open with `//!` docs, and library
/// roots (`lib.rs`) must carry `#![warn(missing_docs)]` so the CI doc
/// gate (`cargo doc -D warnings` since PR 2) has teeth on new items.
fn crate_docs(path: &str, lexed: &Lexed, out: &mut Vec<Diag>) {
    if !is_crate_root(path) {
        return;
    }
    if !lexed.comments.iter().any(|c| c.inner_doc) {
        out.push(Diag {
            file: path.to_string(),
            line: 1,
            rule: "crate-docs",
            msg: "crate root has no `//!` crate-level documentation header".to_string(),
        });
    }
    if path.ends_with("src/lib.rs") && !has_inner_attr(&lexed.toks, &["warn", "missing_docs"]) {
        out.push(Diag {
            file: path.to_string(),
            line: 1,
            rule: "crate-docs",
            msg: "library crate root is missing `#![warn(missing_docs)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(path: &str, src: &str) -> Vec<Diag> {
        check_file(path, &lex(src))
    }

    #[test]
    fn partial_cmp_call_flagged_trait_impl_not() {
        let bad = diags("crates/x/src/a.rs", "v.sort_by(|a, b| a.partial_cmp(b));");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "float-total-order");
        let ok = diags(
            "crates/x/src/a.rs",
            "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { \
             Some(self.cmp(o)) } }",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn panic_surface_scoped_and_test_aware() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u32>) { x.unwrap(); panic!(); } }";
        let in_server = diags("crates/server/src/h.rs", src);
        assert_eq!(in_server.len(), 1, "{in_server:?}");
        assert_eq!(in_server[0].line, 1);
        let outside = diags("crates/core/src/h.rs", src);
        assert!(outside.is_empty());
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let d = diags(
            "crates/server/src/h.rs",
            "let a = x.unwrap_or(0); let b = y.unwrap_or_else(|| 1); let c = z.unwrap_or_default();",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn crate_root_attrs_required() {
        let d = diags("crates/x/src/lib.rs", "pub fn f() {}");
        let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"unsafe-forbid"));
        assert!(rules.contains(&"crate-docs"));
        let clean = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(diags("crates/x/src/lib.rs", clean).is_empty());
        // main.rs: forbid + //! required, missing_docs not.
        let main_ok = "//! Docs.\n#![forbid(unsafe_code)]\nfn main() {}";
        assert!(diags("crates/x/src/main.rs", main_ok).is_empty());
    }

    #[test]
    fn lock_order_and_probe_rules() {
        // Guard dropped before the probe: clean.
        let ok = "fn f(&self) { let ids = { let r = self.route_lock(); r.ids() }; \
                  self.shards[0].search(q); }";
        assert!(diags("crates/core/src/sharded.rs", ok).is_empty());
        // Probe under a live route guard: flagged.
        let bad = "fn f(&self) { let r = self.route_lock(); self.shards[0].search(q); }";
        let d = diags("crates/core/src/sharded.rs", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-discipline");
        // Out-of-order nested acquisition: flagged.
        let bad2 = "fn g(&self) { let s = self.state.lock(); let r = self.route.lock(); }";
        let d2 = diags("crates/core/src/live.rs", bad2);
        assert_eq!(d2.len(), 1, "{d2:?}");
        // Same file name outside the lock set: rule does not run.
        assert!(diags("crates/core/src/other.rs", bad).is_empty());
    }

    #[test]
    fn narrowing_casts_flagged_only_on_persisted_paths() {
        let src = "fn f(n: usize, out: &mut Vec<u8>) { \
                   out.extend_from_slice(&(n as u32).to_le_bytes()); let w = n as u64; }";
        let d = diags("crates/index/src/serialize.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "persisted-narrowing-cast");
        // The same cast outside the persisted-format files is exempt,
        // and `as u64` widenings never flag.
        assert!(diags("crates/index/src/columns.rs", src).is_empty());
        // Test code on a persisted path is exempt.
        let test_src = "#[cfg(test)]\nmod tests { fn g(n: usize) -> u32 { n as u32 } }";
        assert!(diags("crates/core/src/persist.rs", test_src).is_empty());
    }

    #[test]
    fn bench_bins_must_record_parallelism() {
        let bad = "fn main() { println!(\"{}\", 1); }";
        let d = diags("crates/bench/src/bin/bench_probe.rs", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "bench-parallelism-recorded");
        assert_eq!(d[0].line, 1);
        let ok = "fn main() { let cores = std::thread::available_parallelism()\
                  .map(|n| n.get()).unwrap_or(1); println!(\"{cores}\"); }";
        assert!(diags("crates/bench/src/bin/bench_probe.rs", ok).is_empty());
        // Non-bench binaries are exempt.
        assert!(diags("crates/cli/src/bin/tool.rs", bad).is_empty());
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let src = "fn f(&self) { let r = self.route_lock(); drop(r); \
                   self.shards[0].search(q); }";
        assert!(diags("crates/core/src/sharded.rs", src).is_empty());
    }

    #[test]
    fn refresh_gate_may_span_builds() {
        let src = "fn f(&self) { let _g = self.refresh_gate.lock(); \
                   let e = SealEngine::build_next_generation(a, b); \
                   let mut s = self.state.lock(); s.swap(e); }";
        assert!(diags("crates/core/src/live.rs", src).is_empty());
    }
}
