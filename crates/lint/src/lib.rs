//! # seal-lint — the workspace invariant checker.
//!
//! Eight PRs of engine work rest on a handful of textual invariants
//! that nothing used to enforce: floats are ordered with `total_cmp`
//! (the PR 3 NaN sweep), the arenas carry no `unsafe`, locks are taken
//! refresh-gate → route → shard-state and never held across a probe
//! (the PR 4/PR 8 swap protocols), and the serving tier never panics
//! on hostile input (PR 7). This crate turns those prose rules from
//! `docs/ARCHITECTURE.md` into machine-checked CI gates:
//!
//! ```text
//! cargo run -p seal-lint            # lint the workspace, exit 1 on findings
//! cargo run -p seal-lint -- --list-rules
//! cargo run -p seal-lint -- path/to/file.rs …
//! ```
//!
//! Same zero-registry constraint as everything else: a minimal Rust
//! [`lexer`] (strings, raw strings, char-vs-lifetime, nested block
//! comments) feeds a token-stream [`rules`] engine — no `syn`, no
//! proc-macros, no dependencies. Exceptions are written down inline
//! (`// seal-lint: allow(<rule>) — <justification>`) and audited by
//! the `waiver-discipline` rule; see [`driver`] for the mechanism and
//! `crates/lint/fixtures/` for the positive/negative corpus each rule
//! is pinned by.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod lexer;
pub mod rules;

pub use driver::{lint_paths, lint_source, lint_workspace, workspace_files};
pub use rules::{anchor, rationale, Diag, RULES};
