//! Timing and table-printing helpers shared by the figure binaries.

use std::time::Instant;

/// Times a closure, returning (result, elapsed milliseconds).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs the workload once as warm-up, then twice measured, returning
/// the mean per-query milliseconds.
pub fn mean_query_ms<Q, T>(queries: &[Q], mut f: impl FnMut(&Q) -> T) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    for q in queries {
        std::hint::black_box(f(q));
    }
    const PASSES: usize = 2;
    let start = Instant::now();
    for _ in 0..PASSES {
        for q in queries {
            std::hint::black_box(f(q));
        }
    }
    start.elapsed().as_secs_f64() * 1e3 / (PASSES * queries.len()) as f64
}

/// Measures batch-serving throughput for any engine shape: one
/// warm-up pass, then `passes` measured runs of the given
/// `search_batch` dispatch over the workload at the given thread
/// count. The dispatch is a closure so `SealEngine`, `LiveEngine` and
/// `ShardedEngine` (or anything implementing
/// `seal_core::QueryEngine`) all fit:
///
/// ```ignore
/// let qps = batch_qps(&qs, threads, 3, |q, t| engine.search_batch(q, t));
/// ```
///
/// Returns queries per second (mean across passes).
pub fn batch_qps(
    queries: &[seal_core::Query],
    threads: usize,
    passes: usize,
    search_batch: impl Fn(&[seal_core::Query], usize) -> Vec<seal_core::SearchResult>,
) -> f64 {
    if queries.is_empty() || passes == 0 {
        return 0.0;
    }
    std::hint::black_box(search_batch(queries, threads));
    let start = Instant::now();
    for _ in 0..passes {
        std::hint::black_box(search_batch(queries, threads));
    }
    (passes * queries.len()) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Parses `--out PATH` from the process argv, falling back to
/// `default`. Shared by the `bench_*` bins that record JSON baselines.
pub fn out_path(default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

/// Writes a recorded JSON baseline to `path` and announces it (the
/// `bench_*` bins' common epilogue).
pub fn write_json(path: &str, json: &str) {
    std::fs::write(path, json).expect("write bench json");
    println!("wrote {path}");
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{cell:>w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a header followed by an underline.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

/// Formats megabytes with two decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_returns_result() {
        let (v, ms) = time_ms(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(ms >= 0.0);
    }

    #[test]
    fn mean_query_ms_empty() {
        let qs: Vec<u32> = vec![];
        assert_eq!(mean_query_ms(&qs, |q| *q), 0.0);
    }

    #[test]
    fn mb_formats() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(mb(0), "0.00");
    }
}
