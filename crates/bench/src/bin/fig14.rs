//! **Figure 14** — GridFilter (G) vs hash-based HybridFilter (H) at
//! granularities 256/512/1024 on the Twitter-like dataset, sweeping
//! tau_R (a, c) and tau_T (b, d) for large-region (a, b) and
//! small-region (c, d) workloads.
//!
//! Run: `cargo run --release -p seal-bench --bin fig14 [--objects N]`

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{mean_query_ms, print_header, print_row};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

const TAUS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
const DEFAULT_TAU: f64 = 0.4;

fn main() {
    let cfg = BenchConfig::from_args();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let sides = [256u32, 512, 1024];
    eprintln!("building 6 engines over {} objects…", store.len());
    let mut engines: Vec<(String, SealEngine)> = Vec::new();
    for side in sides {
        engines.push((
            format!("G-{side}"),
            SealEngine::build(store.clone(), FilterKind::Grid { side }),
        ));
        engines.push((
            format!("H-{side}"),
            SealEngine::build(
                store.clone(),
                FilterKind::HashHybrid {
                    side,
                    buckets: Some(1 << 20),
                },
            ),
        ));
    }
    let widths = [8, 10, 10, 10, 10, 10, 10];

    let mut header = vec!["tau"];
    for (n, _) in &engines {
        header.push(n.as_str());
    }

    for (panel, spec, sweep_spatial) in [
        ("a: large-region, sweep tau_R", QuerySpec::LargeRegion, true),
        (
            "b: large-region, sweep tau_T",
            QuerySpec::LargeRegion,
            false,
        ),
        ("c: small-region, sweep tau_R", QuerySpec::SmallRegion, true),
        (
            "d: small-region, sweep tau_T",
            QuerySpec::SmallRegion,
            false,
        ),
    ] {
        let raw = workload(&d, spec, &cfg);
        println!("\n## Fig 14({panel})  [ms/query]");
        print_header(&header, &widths);
        for tau in TAUS {
            let (tr, tt) = if sweep_spatial {
                (tau, DEFAULT_TAU)
            } else {
                (DEFAULT_TAU, tau)
            };
            let qs = with_thresholds(&raw, tr, tt);
            let mut cells = vec![format!("{tau:.1}")];
            for (_, e) in &engines {
                cells.push(format!("{:.2}", mean_query_ms(&qs, |q| e.search(q))));
            }
            print_row(&cells, &widths);
        }
    }
    println!(
        "\npaper shape to check: H-* beat G-* at every granularity (the paper\n\
         reports up to an order of magnitude), because hybrid elements prune\n\
         on both axes simultaneously."
    );
}
