//! **Figure 12** — TokenFilter vs GridFilter(256/512/1024) on the
//! Twitter-like dataset: mean elapsed time per query while sweeping the
//! spatial threshold (a, c) and the textual threshold (b, d), for
//! large-region (a, b) and small-region (c, d) workloads.
//!
//! Run: `cargo run --release -p seal-bench --bin fig12 [--objects N]`

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{mean_query_ms, print_header, print_row};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

const TAUS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
const DEFAULT_TAU: f64 = 0.4;

fn main() {
    let cfg = BenchConfig::from_args();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    eprintln!("building 4 engines over {} objects…", store.len());
    let engines: Vec<SealEngine> = vec![
        SealEngine::build(store.clone(), FilterKind::Token),
        SealEngine::build(store.clone(), FilterKind::Grid { side: 256 }),
        SealEngine::build(store.clone(), FilterKind::Grid { side: 512 }),
        SealEngine::build(store.clone(), FilterKind::Grid { side: 1024 }),
    ];
    let names = [
        "TokenFilter",
        "GridFilter(256)",
        "GridFilter(512)",
        "GridFilter(1024)",
    ];
    let widths = [8, 14, 16, 16, 17];

    for (panel, spec) in [
        ("a: large-region, sweep tau_R", QuerySpec::LargeRegion),
        ("c: small-region, sweep tau_R", QuerySpec::SmallRegion),
    ] {
        let raw = workload(&d, spec, &cfg);
        println!("\n## Fig 12({panel})  [ms/query]");
        print_header(&["tau_R", names[0], names[1], names[2], names[3]], &widths);
        for tau_r in TAUS {
            let qs = with_thresholds(&raw, tau_r, DEFAULT_TAU);
            let mut cells = vec![format!("{tau_r:.1}")];
            for e in &engines {
                cells.push(format!("{:.2}", mean_query_ms(&qs, |q| e.search(q))));
            }
            print_row(&cells, &widths);
        }
    }

    for (panel, spec) in [
        ("b: large-region, sweep tau_T", QuerySpec::LargeRegion),
        ("d: small-region, sweep tau_T", QuerySpec::SmallRegion),
    ] {
        let raw = workload(&d, spec, &cfg);
        println!("\n## Fig 12({panel})  [ms/query]");
        print_header(&["tau_T", names[0], names[1], names[2], names[3]], &widths);
        for tau_t in TAUS {
            let qs = with_thresholds(&raw, DEFAULT_TAU, tau_t);
            let mut cells = vec![format!("{tau_t:.1}")];
            for e in &engines {
                cells.push(format!("{:.2}", mean_query_ms(&qs, |q| e.search(q))));
            }
            print_row(&cells, &widths);
        }
    }
    println!(
        "\npaper shape to check: TokenFilter flat in tau_R / improving in tau_T;\n\
         GridFilter improving in tau_R; finer grids faster at high tau_R;\n\
         crossover between the two families as thresholds grow."
    );
}
