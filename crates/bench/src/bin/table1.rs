//! **Table 1** — data statistics and index sizes for both datasets:
//! IR-tree, TokenInv, GridInv(1024), HashInv(1024), HierarchicalInv.
//!
//! Run: `cargo run --release -p seal-bench --bin table1 [--objects N]`

use seal_bench::data::{build_store, dataset, BenchConfig, Which};
use seal_bench::harness::{mb, print_header, print_row, time_ms};
use seal_core::{FilterKind, SealEngine};

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Table 1: data statistics and index sizes ({} objects/dataset)\n",
        cfg.objects
    );

    let widths = [26, 16, 16];
    print_header(&["", "Twitter-like", "USA-like"], &widths);

    let mut rows: Vec<[String; 3]> = Vec::new();
    let mut engines: Vec<Vec<(String, usize)>> = Vec::new();
    for which in [Which::Twitter, Which::Usa] {
        let d = dataset(which, &cfg);
        let store = build_store(&d);
        let stats = store.stats();
        if rows.is_empty() {
            rows.push(["Object number".into(), String::new(), String::new()]);
            rows.push([
                "Avg region area (km^2)".into(),
                String::new(),
                String::new(),
            ]);
            rows.push(["Entire space (M km^2)".into(), String::new(), String::new()]);
            rows.push(["Avg token number".into(), String::new(), String::new()]);
            rows.push(["Data size (MB)".into(), String::new(), String::new()]);
        }
        let col = if which == Which::Twitter { 1 } else { 2 };
        rows[0][col] = format!("{}", stats.objects);
        rows[1][col] = format!("{:.1}", stats.avg_region_area);
        rows[2][col] = format!("{:.0}", stats.space_area / 1e6);
        rows[3][col] = format!("{:.1}", stats.avg_token_count);
        rows[4][col] = mb(stats.data_bytes);

        // Index sizes (paper rows: IR-tree, TokenInv, GridInv(1024),
        // HashInv(1024), HierarchicalInv).
        let mut sizes = Vec::new();
        for (name, kind) in [
            ("IR-tree size (MB)", FilterKind::IrTree { fanout: 64 }),
            ("TokenInv size (MB)", FilterKind::Token),
            ("TokenInv compressed (MB)", FilterKind::TokenCompressed),
            ("GridInv (1024) size (MB)", FilterKind::Grid { side: 1024 }),
            (
                "HashInv (1024) size (MB)",
                FilterKind::HashHybrid {
                    side: 1024,
                    buckets: Some(1 << 20),
                },
            ),
            (
                "HashInv compressed (MB)",
                FilterKind::HashHybridCompressed {
                    side: 1024,
                    buckets: Some(1 << 20),
                },
            ),
            (
                "HierarchicalInv size (MB)",
                FilterKind::Hierarchical {
                    max_level: 10,
                    budget: 16,
                },
            ),
        ] {
            let store2 = store.clone();
            let (engine, ms) = time_ms(move || SealEngine::build(store2, kind));
            eprintln!("  [{}] built {name} in {ms:.0} ms", d.name);
            sizes.push((name.to_string(), engine.index_bytes()));
        }
        engines.push(sizes);
    }
    for row in &rows {
        print_row(row.as_ref(), &widths);
    }
    for (tw, usa) in engines[0].iter().zip(engines[1].iter()) {
        print_row(&[tw.0.clone(), mb(tw.1), mb(usa.1)], &widths);
    }
    println!("\npaper shape to check: IR-tree >> HashInv > HierarchicalInv > TokenInv > GridInv");
}
