//! Records the sharded-serving baseline to `BENCH_shard.json`:
//! throughput, fan-out ratio (shards touched / N) and merge overhead
//! for a `ShardedEngine` at N ∈ {1, 2, 4, 8} shards versus the
//! single-arena `LiveEngine` over the same corpus and small-region
//! workload.
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_shard -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! Every configuration first cross-checks exactness — the sharded
//! answers must be identical to the single engine's on every query —
//! then times. The interesting columns:
//!
//! * **fan_out_ratio** — mean (shards probed / N). The spatial
//!   partitioner's whole value proposition is this being well under
//!   1.0 for small-region queries: work the covering-MBR prune never
//!   dispatched.
//! * **merge_share** — merge+remap wall-clock over total query
//!   wall-clock. The price of sharding; should stay marginal.
//! * **qps / speedup_vs_single** — on a 1-core box shards serialize,
//!   so qps ≈ the fan-out saving minus merge overhead; real scaling
//!   needs cores (see the caveat in the JSON).

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{batch_qps, out_path, print_header, print_row, write_json};
use seal_core::{BuildOpts, FilterKind, LiveEngine, QueryEngine, ShardedEngine, SimilarityConfig};
use seal_datagen::QuerySpec;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let cfg = BenchConfig::from_args();
    let out = out_path("BENCH_shard.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let qs = with_thresholds(&workload(&d, QuerySpec::SmallRegion, &cfg), 0.2, 0.2);
    let kind = FilterKind::seal_default();

    let single = LiveEngine::new(store.clone(), kind);
    let expected: Vec<Vec<u32>> = qs
        .iter()
        .map(|q| {
            single
                .search(q)
                .sorted()
                .answers
                .iter()
                .map(|id| id.0)
                .collect()
        })
        .collect();
    let single_qps = batch_qps(&qs, 1, 3, |q, t| single.search_batch(q, t));
    println!(
        "single-arena baseline: {:.1} q/s over {} queries, {} objects",
        single_qps,
        qs.len(),
        store.len(),
    );

    print_header(
        &[
            "shards",
            "policy",
            "qps",
            "speedup",
            "fan_out",
            "merge_us",
            "merge_share",
        ],
        &[7, 10, 10, 8, 8, 9, 11],
    );
    let mut rows = Vec::new();
    for &n in &SHARD_COUNTS {
        let engine = ShardedEngine::with_opts(
            &store,
            kind,
            SimilarityConfig::default(),
            BuildOpts::default(),
            n,
            None,
        );
        // Exactness and instrumentation pass: sharded answers must be
        // the single engine's, query by query.
        let mut probed = 0usize;
        let mut merge_s = 0.0f64;
        let mut total_s = 0.0f64;
        for (q, expect) in qs.iter().zip(&expected) {
            let r = engine.search(q);
            probed += r.stats.shards_probed;
            merge_s += r.stats.merge_time.as_secs_f64();
            total_s += r.stats.total_time().as_secs_f64() + r.stats.merge_time.as_secs_f64();
            let got: Vec<u32> = r.sorted().answers.iter().map(|id| id.0).collect();
            assert_eq!(&got, expect, "sharded answers diverged at n={n}");
        }
        let fan_out = probed as f64 / (qs.len() * n) as f64;
        let merge_us = merge_s * 1e6 / qs.len() as f64;
        let merge_share = merge_s / total_s.max(1e-12);
        let qps = batch_qps(&qs, 1, 3, |q, t| engine.search_batch(q, t));
        let policy = format!("{:?}", engine.policy());
        print_row(
            &[
                format!("{n}"),
                policy.clone(),
                format!("{qps:.1}"),
                format!("{:.2}", qps / single_qps.max(1e-9)),
                format!("{fan_out:.3}"),
                format!("{merge_us:.2}"),
                format!("{merge_share:.4}"),
            ],
            &[7, 10, 10, 8, 8, 9, 11],
        );
        rows.push(format!(
            "    {{ \"shards\": {n}, \"policy\": \"{policy}\", \"qps\": {qps:.1}, \
             \"speedup_vs_single\": {:.3}, \"fan_out_ratio\": {fan_out:.4}, \
             \"merge_us_per_query\": {merge_us:.2}, \"merge_share\": {merge_share:.5} }}",
            qps / single_qps.max(1e-9),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sharded serving: qps, fan-out ratio (shards probed / N) and merge \
         overhead for ShardedEngine at N shards vs the single-arena LiveEngine baseline; answers \
         cross-checked identical before timing\",\n  \
         \"objects\": {},\n  \"queries\": {},\n  \"workload\": \"small-region, tau 0.2/0.2\",\n  \
         \"available_parallelism\": {cores},\n  \
         \"caveat\": \"recorded on a 1-core container when available_parallelism is 1: per-shard \
         probes serialize, so qps reflects fan-out pruning minus merge overhead, not parallel \
         scaling — re-record on a >=8-core box (see ROADMAP) before quoting speedups\",\n  \
         \"single_arena_qps\": {single_qps:.1},\n  \"rows\": [\n{}\n  ]\n}}\n",
        store.len(),
        qs.len(),
        rows.join(",\n"),
    );
    write_json(&out, &json);
}
