//! **Figure 18** — scalability of SEAL's hybrid filtering: mean elapsed
//! time per query as the number of objects grows (5 steps), at three
//! spatial thresholds (a) and three textual thresholds (b),
//! large-region workload, Twitter-like dataset.
//!
//! Run: `cargo run --release -p seal-bench --bin fig18 [--objects N]`
//! (`--objects` sets the LARGEST step; smaller steps are 1/5 … 4/5.)

use seal_bench::data::{build_store, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{mean_query_ms, print_header, print_row};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

const DEFAULT_TAU: f64 = 0.4;

fn main() {
    let cfg = BenchConfig::from_args();
    let widths = [12, 10, 10, 10];
    let steps: Vec<usize> = (1..=5).map(|i| cfg.objects * i / 5).collect();

    let mut rows_spatial: Vec<Vec<String>> = Vec::new();
    let mut rows_textual: Vec<Vec<String>> = Vec::new();
    for &n in &steps {
        let step_cfg = BenchConfig {
            objects: n,
            ..cfg.clone()
        };
        let d = seal_bench::data::dataset(Which::Twitter, &step_cfg);
        let store = build_store(&d);
        eprintln!("building SEAL over {n} objects…");
        let engine = SealEngine::build(store, FilterKind::seal_default());
        let raw = workload(&d, QuerySpec::LargeRegion, &step_cfg);

        let mut row = vec![format!("{n}")];
        for tau_r in [0.1, 0.3, 0.5] {
            let qs = with_thresholds(&raw, tau_r, DEFAULT_TAU);
            row.push(format!(
                "{:.1}",
                1e3 * mean_query_ms(&qs, |q| engine.search(q))
            ));
        }
        rows_spatial.push(row);

        let mut row = vec![format!("{n}")];
        for tau_t in [0.1, 0.3, 0.5] {
            let qs = with_thresholds(&raw, DEFAULT_TAU, tau_t);
            row.push(format!(
                "{:.1}",
                1e3 * mean_query_ms(&qs, |q| engine.search(q))
            ));
        }
        rows_textual.push(row);
    }

    println!("\n## Fig 18(a) large-region, tau_T={DEFAULT_TAU}  [us/query]");
    print_header(&["objects", "tau_R=0.1", "tau_R=0.3", "tau_R=0.5"], &widths);
    for r in &rows_spatial {
        print_row(r, &widths);
    }
    println!("\n## Fig 18(b) large-region, tau_R={DEFAULT_TAU}  [us/query]");
    print_header(&["objects", "tau_T=0.1", "tau_T=0.3", "tau_T=0.5"], &widths);
    for r in &rows_textual {
        print_row(r, &widths);
    }
    println!("\npaper shape to check: sub-linear growth in the number of objects.");
}
