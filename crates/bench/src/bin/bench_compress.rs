//! Records compressed-vs-uncompressed serving numbers to
//! `BENCH_compress.json`: index bytes and batch-probe throughput for
//! the token and hash-hybrid filters in both storage modes (the arena
//! form vs. the compressed arena served in place).
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_compress -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! The JSON records `available_parallelism` and a caveat string: on a
//! 1-core container the absolute throughputs say little — the numbers
//! to read are the compressed/uncompressed *ratios* (size and qps).

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{batch_qps, out_path, write_json};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

struct Mode {
    label: &'static str,
    arena: FilterKind,
    compressed: FilterKind,
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = out_path("BENCH_compress.json");

    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::LargeRegion, &cfg);
    let qs = with_thresholds(&raw, 0.2, 0.2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let modes = [
        Mode {
            label: "token",
            arena: FilterKind::Token,
            compressed: FilterKind::TokenCompressed,
        },
        Mode {
            label: "hash_hybrid",
            arena: FilterKind::HashHybrid {
                side: 256,
                buckets: Some(1 << 16),
            },
            compressed: FilterKind::HashHybridCompressed {
                side: 256,
                buckets: Some(1 << 16),
            },
        },
    ];

    let mut sections = Vec::new();
    for mode in &modes {
        let mut row = String::new();
        row.push_str(&format!("  \"{}\": {{\n", mode.label));
        let mut stats = Vec::new();
        for (tag, kind) in [("arena", mode.arena), ("compressed", mode.compressed)] {
            let engine = SealEngine::build(store.clone(), kind);
            let bytes = engine.index_bytes();
            let qps = batch_qps(&qs, 1, 3, |q, t| engine.search_batch(q, t));
            println!(
                "{:<12} {:<12} {:>12} bytes {:>12.1} q/s ({})",
                mode.label,
                tag,
                bytes,
                qps,
                engine.filter_name()
            );
            stats.push((tag, bytes, qps));
        }
        let (arena_bytes, arena_qps) = (stats[0].1, stats[0].2);
        let (comp_bytes, comp_qps) = (stats[1].1, stats[1].2);
        for (tag, bytes, qps) in &stats {
            row.push_str(&format!(
                "    \"{tag}\": {{ \"index_bytes\": {bytes}, \"qps\": {qps:.1} }},\n"
            ));
        }
        row.push_str(&format!(
            "    \"compressed_size_ratio\": {:.3},\n",
            comp_bytes as f64 / arena_bytes.max(1) as f64
        ));
        row.push_str(&format!(
            "    \"compressed_qps_ratio\": {:.3}\n",
            comp_qps / arena_qps.max(1e-9)
        ));
        row.push_str("  }");
        sections.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"bench\": \"compressed vs uncompressed probe throughput (queries/sec, 1 thread)\",\n",
    );
    json.push_str(&format!("  \"objects\": {},\n", store.len()));
    json.push_str(&format!("  \"queries\": {},\n", qs.len()));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(
        "  \"caveat\": \"recorded on a 1-core container when available_parallelism is 1; \
         absolute qps is not meaningful there — compare the size/qps ratios\",\n",
    );
    json.push_str(&sections.join(",\n"));
    json.push_str("\n}\n");

    write_json(&out_path, &json);
}
