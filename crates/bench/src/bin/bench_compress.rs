//! Records compressed-vs-uncompressed serving numbers to
//! `BENCH_compress.json`: index bytes and batch-probe throughput for
//! the token and hash-hybrid filters in both storage modes (the arena
//! form vs. the compressed arena served in place), plus an **id-codec
//! comparison** — varint vs delta-coded bit-packed 128-id blocks:
//! id-column bytes per posting and full-list decode ns/id per codec,
//! on two posting corpora built from the same objects:
//!
//! * `clustered` — grid-cell-keyed lists with ids assigned in spatial
//!   scan order (the id layout a bulk spatial load produces: each
//!   cell's ids are consecutive runs, so deltas are small). The
//!   packed/varint size and decode-qps ratios the PR 10 acceptance
//!   bar reads come from this corpus.
//! * `token` — token-keyed lists with ids in stream order (adversarial
//!   for delta coding: gaps are corpus-frequency sized).
//!
//! In-binary contract check: the block-packed arena answers every
//! probed (key, threshold) pair **bit-identically** to the varint
//! arena and to the uncompressed index it was compressed from.
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_compress -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! The JSON records `available_parallelism` and a caveat string: on a
//! 1-core container the absolute throughputs say little — the numbers
//! to read are the compressed/uncompressed *ratios* (size and qps).

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{batch_qps, out_path, write_json};
use seal_core::{FilterKind, ObjectId, Query, SealEngine};
use seal_datagen::QuerySpec;
use seal_index::{CompressedInvertedIndex, IdCodec, InvertedIndex};

struct Mode {
    label: &'static str,
    arena: FilterKind,
    compressed: FilterKind,
}

fn answers(engine: &SealEngine, queries: &[Query]) -> Vec<Vec<ObjectId>> {
    engine
        .search_batch(queries, 1)
        .into_iter()
        .map(|r| r.sorted().answers)
        .collect()
}

/// Full-list decode timing for one compressed arena: every key probed
/// at a qualify-everything threshold, `rounds` passes over the whole
/// index. Returns (ns per decoded id, total ids decoded per pass, the
/// ids of the last pass for answer-parity checks).
fn decode_pass<K: Ord + Copy + std::hash::Hash + Sync>(
    idx: &CompressedInvertedIndex<K>,
    keys: &[K],
    rounds: u32,
) -> (f64, usize, u64) {
    let mut scratch = Vec::new();
    let mut decoded = 0usize;
    let mut checksum = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        decoded = 0;
        checksum = 0;
        for k in keys {
            let ids = idx.qualifying_into(k, 0.0, &mut scratch);
            decoded += ids.len();
            // Fold the ids so the decode cannot be optimized away and
            // codec parity is also checked at full-corpus scale.
            for &id in ids {
                checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(id));
            }
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(rounds.max(1));
    (ns / decoded.max(1) as f64, decoded, checksum)
}

/// Measures one posting corpus under both id codecs: asserts the
/// varint and block-packed arenas answer bit-identically to the
/// uncompressed index at several thresholds (full lists, prefixes,
/// empty cuts), times full decode passes, and returns the JSON body
/// plus the (packed/varint size, decode-qps) ratios.
fn codec_section<K>(label: &str, inv: &InvertedIndex<K>) -> (String, f64, f64)
where
    K: Ord + Copy + std::hash::Hash + Sync + std::fmt::Display,
{
    let keys: Vec<K> = inv.iter().map(|(k, _)| k).collect();
    let varint = CompressedInvertedIndex::compress_with_codec(inv, IdCodec::Varint);
    let packed = CompressedInvertedIndex::compress_with_codec(inv, IdCodec::BlockPacked);
    let postings = inv.posting_count().max(1);

    let mut scratch_v = Vec::new();
    let mut scratch_p = Vec::new();
    for c in [0.0, 0.35, 0.8, 1.01] {
        for key in &keys {
            let reference = inv.qualifying(key, c);
            assert_eq!(
                varint.qualifying_into(key, c, &mut scratch_v),
                reference,
                "{label}: varint codec diverged from the uncompressed index (key {key}, c {c})"
            );
            assert_eq!(
                packed.qualifying_into(key, c, &mut scratch_p),
                reference,
                "{label}: block-packed codec diverged from the uncompressed index \
                 (key {key}, c {c})"
            );
        }
    }

    let rounds = 5;
    let (varint_ns, decoded, varint_sum) = decode_pass(&varint, &keys, rounds);
    let (packed_ns, _, packed_sum) = decode_pass(&packed, &keys, rounds);
    assert_eq!(
        varint_sum, packed_sum,
        "{label}: codec decode checksums diverged at full-corpus scale"
    );
    let size_ratio = packed.id_column_bytes() as f64 / varint.id_column_bytes().max(1) as f64;
    let decode_qps_ratio = varint_ns / packed_ns.max(1e-12);
    println!(
        "id codec ({label:>9}) varint      {:>12} id bytes {:>10.2} ns/id",
        varint.id_column_bytes(),
        varint_ns
    );
    println!(
        "id codec ({label:>9}) blockpacked {:>12} id bytes {:>10.2} ns/id \
         (size ×{size_ratio:.3}, decode qps ×{decode_qps_ratio:.3})",
        packed.id_column_bytes(),
        packed_ns
    );

    let mut body = String::new();
    body.push_str(&format!("    \"{label}\": {{\n"));
    body.push_str(&format!("      \"postings\": {postings},\n"));
    body.push_str(&format!("      \"decoded_ids_per_pass\": {decoded},\n"));
    body.push_str(&format!(
        "      \"varint\": {{ \"id_column_bytes\": {}, \"bytes_per_posting\": {:.3}, \
         \"decode_ns_per_id\": {varint_ns:.2} }},\n",
        varint.id_column_bytes(),
        varint.id_column_bytes() as f64 / postings as f64
    ));
    body.push_str(&format!(
        "      \"block_packed\": {{ \"id_column_bytes\": {}, \"bytes_per_posting\": {:.3}, \
         \"decode_ns_per_id\": {packed_ns:.2} }},\n",
        packed.id_column_bytes(),
        packed.id_column_bytes() as f64 / postings as f64
    ));
    body.push_str(&format!("      \"packed_size_ratio\": {size_ratio:.3},\n"));
    body.push_str(&format!(
        "      \"packed_decode_qps_ratio\": {decode_qps_ratio:.3}\n"
    ));
    body.push_str("    }");
    (body, size_ratio, decode_qps_ratio)
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = out_path("BENCH_compress.json");

    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::LargeRegion, &cfg);
    let qs = with_thresholds(&raw, 0.2, 0.2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let modes = [
        Mode {
            label: "token",
            arena: FilterKind::Token,
            compressed: FilterKind::TokenCompressed,
        },
        Mode {
            label: "hash_hybrid",
            arena: FilterKind::HashHybrid {
                side: 256,
                buckets: Some(1 << 16),
            },
            compressed: FilterKind::HashHybridCompressed {
                side: 256,
                buckets: Some(1 << 16),
            },
        },
    ];

    let mut sections = Vec::new();
    for mode in &modes {
        let mut row = String::new();
        row.push_str(&format!("  \"{}\": {{\n", mode.label));
        let mut stats = Vec::new();
        let mut mode_answers = Vec::new();
        for (tag, kind) in [("arena", mode.arena), ("compressed", mode.compressed)] {
            let engine = SealEngine::build(store.clone(), kind);
            let bytes = engine.index_bytes();
            let qps = batch_qps(&qs, 1, 3, |q, t| engine.search_batch(q, t));
            println!(
                "{:<12} {:<12} {:>12} bytes {:>12.1} q/s ({})",
                mode.label,
                tag,
                bytes,
                qps,
                engine.filter_name()
            );
            stats.push((tag, bytes, qps));
            mode_answers.push(answers(&engine, &qs));
        }
        assert_eq!(
            mode_answers[0], mode_answers[1],
            "{}: compressed (block-packed) engine diverged from the arena engine",
            mode.label
        );
        let (arena_bytes, arena_qps) = (stats[0].1, stats[0].2);
        let (comp_bytes, comp_qps) = (stats[1].1, stats[1].2);
        for (tag, bytes, qps) in &stats {
            row.push_str(&format!(
                "    \"{tag}\": {{ \"index_bytes\": {bytes}, \"qps\": {qps:.1} }},\n"
            ));
        }
        row.push_str(&format!(
            "    \"compressed_size_ratio\": {:.3},\n",
            comp_bytes as f64 / arena_bytes.max(1) as f64
        ));
        row.push_str(&format!(
            "    \"compressed_qps_ratio\": {:.3}\n",
            comp_qps / arena_qps.max(1e-9)
        ));
        row.push_str("  }");
        sections.push(row);
    }

    // ---- id-codec comparison: the same objects' postings encoded
    // with both codecs, answer-checked against the uncompressed
    // index, on a clustered and an unclustered corpus. ----

    // Clustered corpus: grid-cell keys over the object centers, ids
    // assigned in cell scan order — the layout a bulk spatial load
    // produces, where each cell's posting ids are consecutive runs.
    const GRID: u64 = 16;
    let objects = store.objects();
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for o in objects {
        let c = o.region.center();
        min_x = min_x.min(c.x);
        min_y = min_y.min(c.y);
        max_x = max_x.max(c.x);
        max_y = max_y.max(c.y);
    }
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let cell_of = |o: &seal_core::RoiObject| -> u64 {
        let c = o.region.center();
        let cx = (((c.x - min_x) / span_x) * GRID as f64) as u64;
        let cy = (((c.y - min_y) / span_y) * GRID as f64) as u64;
        cy.min(GRID - 1) * GRID + cx.min(GRID - 1)
    };
    let mut order: Vec<usize> = (0..objects.len()).collect();
    order.sort_by_key(|&i| cell_of(&objects[i]));
    let mut clustered: InvertedIndex<u64> = InvertedIndex::new();
    let mut run = 0usize;
    while run < order.len() {
        let key = cell_of(&objects[order[run]]);
        let end = order[run..]
            .iter()
            .position(|&i| cell_of(&objects[i]) != key)
            .map_or(order.len(), |p| run + p);
        let len = (end - run) as f64;
        for (j, id) in (run..end).enumerate() {
            // Descending prefix bounds, ids ascending within the list.
            let id = u32::try_from(id).expect("bench corpus fits u32 ids");
            clustered.push(key, id, (len - j as f64) / len);
        }
        run = end;
    }
    clustered.finalize();

    // Token corpus: token-keyed lists, ids in stream order — gaps are
    // corpus-frequency sized, the adversarial case for delta coding.
    let mut token_inv: InvertedIndex<u32> = InvertedIndex::new();
    for (i, o) in objects.iter().enumerate() {
        let id = u32::try_from(i).expect("bench corpus fits u32 ids");
        let k = o.tokens.len().max(1) as f64;
        for (j, t) in o.tokens.iter().enumerate() {
            token_inv.push(t.0, id, (k - j as f64) / k);
        }
    }
    token_inv.finalize();

    let (clustered_json, clu_size_ratio, clu_qps_ratio) = codec_section("clustered", &clustered);
    let (token_json, _, _) = codec_section("token", &token_inv);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"bench\": \"compressed vs uncompressed probe throughput (queries/sec, 1 thread)\",\n",
    );
    json.push_str(&format!("  \"objects\": {},\n", store.len()));
    json.push_str(&format!("  \"queries\": {},\n", qs.len()));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(
        "  \"caveat\": \"recorded on a 1-core container when available_parallelism is 1; \
         absolute qps is not meaningful there — compare the size/qps ratios\",\n",
    );
    json.push_str("  \"id_codec\": {\n");
    json.push_str(&clustered_json);
    json.push_str(",\n");
    json.push_str(&token_json);
    json.push_str(",\n");
    json.push_str(&format!(
        "    \"packed_size_ratio\": {clu_size_ratio:.3},\n"
    ));
    json.push_str(&format!(
        "    \"packed_decode_qps_ratio\": {clu_qps_ratio:.3},\n"
    ));
    json.push_str("    \"answers_bit_identical\": true\n");
    json.push_str("  },\n");
    json.push_str(&sections.join(",\n"));
    json.push_str("\n}\n");

    write_json(&out_path, &json);
}
