//! Probe-only microbenchmarks for the SoA bound scan, recorded to
//! `BENCH_scan.json`: the qualifying cut (and cut + prefix-copy) cost
//! of the array-of-structs baseline (`partition_point` over
//! interleaved `Posting` structs — the pre-SoA layout) versus the SoA
//! bound column (`partition_point` over a dense `f64` column) versus
//! the chunked branch-free scan (`seal_index::bound_cut`, the
//! production entry point).
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_scan -- \
//!     [--iters N] [--out PATH]
//! ```
//!
//! No engine, no store: this isolates exactly what the SoA refactor
//! changed — the memory each probe touches. Every configuration
//! cross-checks that all three cut implementations return identical
//! counts before timing anything. The JSON records
//! `available_parallelism` and the same 1-core caveat the other
//! `BENCH_*.json` files carry: probes are single-threaded either way,
//! but the numbers should be re-recorded on a ≥8-core box alongside
//! the rest (see ROADMAP).

use seal_bench::harness::{out_path, print_header, print_row, write_json};
use seal_index::{bound_cut, Posting};
use std::hint::black_box;
use std::time::Instant;

/// Lists probed round-robin per configuration, so consecutive probes
/// touch different memory (as real per-key probes do) instead of
/// rewarming one list in L1.
const LISTS: usize = 64;

/// Deterministic xorshift — the bin avoids the rand shim on purpose
/// (it is a dev-dependency of the bench crate).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Thresholds cycled per probe of one list: real queries hit a key
/// with a different `c` every time, so a fixed threshold would let the
/// binary search's branch history memorize the exact probe path — an
/// unrealistically friendly baseline.
const THRESHOLDS: usize = 32;

/// One synthetic posting list in both layouts, plus per-probe
/// thresholds centered on the requested selectivity.
struct Fixture {
    ids: Vec<u32>,
    bounds: Vec<f64>,
    aos: Vec<Posting>,
    thresholds: Vec<f64>,
}

fn fixtures(len: usize, selectivity: f64, rng: &mut Rng) -> Vec<Fixture> {
    (0..LISTS)
        .map(|_| {
            let mut bounds: Vec<f64> = (0..len).map(|_| rng.next_f64() * 1000.0).collect();
            bounds.sort_by(|a, b| b.total_cmp(a));
            let ids: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(2_654_435_761))
                .collect();
            let aos: Vec<Posting> = ids
                .iter()
                .zip(&bounds)
                .map(|(&id, &b)| Posting::new(id, b))
                .collect();
            // Thresholds at bounds that make ~selectivity·len rows
            // qualify, jittered ±50% so consecutive probes of the same
            // list cut at different depths (clamped inside the list).
            let thresholds: Vec<f64> = (0..THRESHOLDS)
                .map(|_| {
                    let s = selectivity * (0.5 + rng.next_f64());
                    let at = ((len as f64 * s) as usize).min(len.saturating_sub(1));
                    if len == 0 {
                        0.0
                    } else {
                        bounds[at]
                    }
                })
                .collect();
            Fixture {
                ids,
                bounds,
                aos,
                thresholds,
            }
        })
        .collect()
}

/// Times `op` over `iters` round-robin probes with cycling
/// thresholds, returning ns/probe.
fn time_probe(
    fixtures: &[Fixture],
    iters: usize,
    mut op: impl FnMut(&Fixture, f64) -> usize,
) -> f64 {
    // Warm-up pass.
    for f in fixtures {
        black_box(op(f, f.thresholds[0]));
    }
    let start = Instant::now();
    for i in 0..iters {
        // Decorrelate list and threshold choice (LISTS and THRESHOLDS
        // share factors, so `i % n` on both would pin each list to one
        // threshold and hand the binary search a memorizable path).
        let f = &fixtures[i % fixtures.len()];
        black_box(op(f, f.thresholds[(i / fixtures.len()) % THRESHOLDS]));
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--iters N"))
        .unwrap_or(200_000);
    let out = out_path("BENCH_scan.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "note: record with RUSTFLAGS='-C target-cpu=native' — the chunked scan only \
         auto-vectorizes to the host's widest SIMD on a native target"
    );

    let mut rng = Rng(0x5EA1_5CA4);
    let mut rows = Vec::new();
    let mut chunked_summary = None;
    let mut fallback_summary = None;

    print_header(
        &[
            "len", "sel", "aos_pp", "soa_pp", "chunked", "aos+copy", "soa+copy",
        ],
        &[8, 6, 10, 10, 10, 10, 10],
    );
    for &len in &[64usize, 128, 256, 1024, 16384] {
        for &selectivity in &[0.02f64, 0.25, 0.75] {
            let fx = fixtures(len, selectivity, &mut rng);
            // Correctness cross-check before timing: all three cuts
            // must agree on every list.
            for f in &fx {
                for &c in &f.thresholds {
                    let oracle = f.bounds.partition_point(|&b| b >= c);
                    assert_eq!(
                        bound_cut(&f.bounds, c),
                        oracle,
                        "chunked cut diverged at len {len}"
                    );
                    assert_eq!(
                        f.aos.partition_point(|p| p.bound >= c),
                        oracle,
                        "AoS cut diverged at len {len}"
                    );
                }
            }

            let aos_pp = time_probe(&fx, iters, |f, c| f.aos.partition_point(|p| p.bound >= c));
            let soa_pp = time_probe(&fx, iters, |f, c| f.bounds.partition_point(|&b| b >= c));
            let chunked = time_probe(&fx, iters, |f, c| bound_cut(&f.bounds, c));

            // Cut + qualifying-prefix copy (what a candidate-collecting
            // probe pays): the AoS baseline strides over interleaved
            // structs pulling out ids; SoA memcpys an id-column prefix.
            let mut scratch: Vec<u32> = Vec::with_capacity(len);
            let aos_copy = time_probe(&fx, iters, |f, c| {
                let cut = f.aos.partition_point(|p| p.bound >= c);
                scratch.clear();
                for p in &f.aos[..cut] {
                    scratch.push(p.object);
                }
                scratch.len()
            });
            let mut scratch2: Vec<u32> = Vec::with_capacity(len);
            let soa_copy = time_probe(&fx, iters, |f, c| {
                let cut = bound_cut(&f.bounds, c);
                scratch2.clear();
                scratch2.extend_from_slice(&f.ids[..cut]);
                scratch2.len()
            });

            print_row(
                &[
                    format!("{len}"),
                    format!("{selectivity}"),
                    format!("{aos_pp:.1}"),
                    format!("{soa_pp:.1}"),
                    format!("{chunked:.1}"),
                    format!("{aos_copy:.1}"),
                    format!("{soa_copy:.1}"),
                ],
                &[8, 6, 10, 10, 10, 10, 10],
            );
            // `bound_cut` is the chunked scan only up to its 256-row
            // cutover; beyond that it is the SoA partition_point
            // fallback — the field name says which code actually ran.
            let cut_field = if len <= 256 {
                "soa_chunked_ns"
            } else {
                "soa_bound_cut_fallback_ns"
            };
            rows.push(format!(
                "    {{ \"len\": {len}, \"selectivity\": {selectivity}, \
                 \"aos_partition_point_ns\": {aos_pp:.2}, \
                 \"soa_partition_point_ns\": {soa_pp:.2}, \
                 \"{cut_field}\": {chunked:.2}, \
                 \"aos_cut_copy_ns\": {aos_copy:.2}, \
                 \"soa_cut_copy_ns\": {soa_copy:.2} }}"
            ));
            // The acceptance rows. "chunked": the largest list the
            // chunked scan actually serves (256 rows — a dense per-key
            // group) at a selective threshold, the regime per-key
            // probes live in. "fallback": the densest list measured,
            // where bound_cut is the SoA partition_point fallback —
            // still a win over the AoS baseline, but a column-layout
            // win, not a chunked-scan one.
            if len == 256 && selectivity == 0.02 {
                chunked_summary = Some(format!(
                    "    \"chunked\": {{ \"len\": {len}, \"selectivity\": {selectivity}, \
                     \"chunked_speedup_vs_aos_partition_point\": {:.2}, \
                     \"soa_copy_speedup_vs_aos_copy\": {:.2} }}",
                    aos_pp / chunked.max(1e-9),
                    aos_copy / soa_copy.max(1e-9),
                ));
            }
            if len == 16384 && selectivity == 0.25 {
                fallback_summary = Some(format!(
                    "    \"partition_point_fallback\": {{ \"len\": {len}, \"selectivity\": {selectivity}, \
                     \"bound_cut_speedup_vs_aos_partition_point\": {:.2}, \
                     \"soa_copy_speedup_vs_aos_copy\": {:.2} }}",
                    aos_pp / chunked.max(1e-9),
                    aos_copy / soa_copy.max(1e-9),
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"probe-only bound-scan microbench: qualifying cut and cut+prefix-copy, \
         AoS partition_point baseline vs SoA partition_point vs chunked SoA scan (ns/probe)\",\n  \
         \"iters\": {iters},\n  \"lists_per_config\": {LISTS},\n  \
         \"available_parallelism\": {cores},\n  \
         \"caveat\": \"recorded on a 1-core container when available_parallelism is 1; probes are \
         single-threaded so the relative numbers hold, but re-record on a >=8-core box alongside \
         the other BENCH_*.json baselines (see ROADMAP) before quoting absolute ns\",\n  \
         \"build_note\": \"build with RUSTFLAGS='-C target-cpu=native' when recording: the chunked \
         scan's branch-free inner loop auto-vectorizes to the host's widest SIMD only then; the \
         portable default target understates it\",\n  \
         \"dense_summary\": {{\n{},\n{}\n  }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        chunked_summary.expect("chunked dense config measured"),
        fallback_summary.expect("fallback dense config measured"),
        rows.join(",\n"),
    );
    write_json(&out, &json);
}
