//! Records index *build* numbers to `BENCH_build.json`:
//!
//! 1. **Parallel hierarchical build** — wall-clock seconds for the
//!    SEAL (`Hierarchical`) build at 1/2/4/8 threads, the speedups,
//!    and an **identical-selections check**: the HSS-Greedy cell
//!    selection fingerprint and the index posting count must match the
//!    sequential build bit-for-bit at every thread count (parallelism
//!    buys wall-clock only, never changes the index).
//! 2. **Incremental re-finalize** — merging K staged postings into an
//!    N-posting frozen index vs. rebuilding from scratch, the
//!    streaming-ingest cycle the merge-based `finalize` makes cheap.
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_build -- \
//!     [--objects N] [--seed N] [--out PATH]
//! ```
//!
//! The speedup curve is only meaningful on multi-core hardware: the
//! JSON records `available_parallelism` alongside the timings so a
//! 1-core container's flat curve is not mistaken for a regression
//! (same caveat as `BENCH_batch.json` / `BENCH_compress.json`).

use seal_bench::data::{build_store, dataset, BenchConfig, Which};
use seal_bench::harness::{out_path, time_ms, write_json};
use seal_core::filters::HierarchicalFilter;
use seal_core::{BuildOpts, SimilarityConfig};
use seal_index::InvertedIndex;

/// Hierarchical configuration under test (the paper's default shape,
/// depth-capped so the bench finishes in seconds at the default
/// object count).
const MAX_LEVEL: u8 = 8;
const BUDGET: usize = 16;

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = out_path("BENCH_build.json");

    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sim = SimilarityConfig::default();

    // --- Parallel hierarchical build -------------------------------
    let threads = [1usize, 2, 4, 8];
    let mut build_s = Vec::new();
    let mut baseline: Option<(Vec<(u32, u64)>, usize)> = None;
    let mut identical = true;
    for &t in &threads {
        let store_t = store.clone();
        let (filter, ms) = time_ms(move || {
            HierarchicalFilter::build_with_opts(
                store_t,
                MAX_LEVEL,
                BUDGET,
                sim,
                BuildOpts::with_threads(t),
            )
        });
        let fingerprint = filter.scheme().selected_cells_sorted();
        let postings = filter.index().posting_count();
        match &baseline {
            None => baseline = Some((fingerprint, postings)),
            Some((fp, pc)) => {
                if *fp != fingerprint || *pc != postings {
                    identical = false;
                }
            }
        }
        println!("threads={t:<2} build {:>8.1} ms", ms);
        build_s.push(ms / 1e3);
    }
    assert!(
        identical,
        "parallel hierarchical build diverged from the sequential selection"
    );
    let base = build_s[0].max(1e-9);

    // --- Incremental re-finalize vs fresh rebuild ------------------
    const FROZEN: usize = 400_000;
    const STAGED: usize = 4_000;
    const KEYS: u64 = 512;
    let posting = |i: usize| {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h % KEYS, (i as u32) & 0xFFFFF, (h >> 16) as f64 % 1e6)
    };
    let mut incremental: InvertedIndex<u64> = InvertedIndex::new();
    for i in 0..FROZEN {
        let (k, o, b) = posting(i);
        incremental.push(k, o, b);
    }
    incremental.finalize();
    for i in FROZEN..FROZEN + STAGED {
        let (k, o, b) = posting(i);
        incremental.push(k, o, b);
    }
    let ((), merge_ms) = time_ms(|| incremental.finalize());

    let (fresh, fresh_ms) = time_ms(|| {
        let mut idx: InvertedIndex<u64> = InvertedIndex::new();
        for i in 0..FROZEN + STAGED {
            let (k, o, b) = posting(i);
            idx.push(k, o, b);
        }
        idx.finalize();
        idx
    });
    assert_eq!(
        fresh.posting_count(),
        incremental.posting_count(),
        "merge path lost postings"
    );
    println!(
        "re-finalize {STAGED} staged into {FROZEN} frozen: merge {merge_ms:.1} ms, \
         fresh rebuild {fresh_ms:.1} ms ({:.2}x)",
        fresh_ms / merge_ms.max(1e-9)
    );

    // --- JSON ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"bench\": \"index build: parallel hierarchical + incremental re-finalize\",\n",
    );
    json.push_str(&format!("  \"objects\": {},\n", store.len()));
    json.push_str(&format!(
        "  \"hierarchical\": {{ \"max_level\": {MAX_LEVEL}, \"budget\": {BUDGET} }},\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(
        "  \"caveat\": \"speedup curve is flat by construction when available_parallelism is 1; \
         identical_selections and the refinalize ratio are valid anywhere\",\n",
    );
    json.push_str("  \"threads\": [1, 2, 4, 8],\n");
    json.push_str(&format!(
        "  \"build_seconds\": [{:.3}, {:.3}, {:.3}, {:.3}],\n",
        build_s[0], build_s[1], build_s[2], build_s[3]
    ));
    json.push_str(&format!(
        "  \"speedup_vs_1_thread\": [{:.2}, {:.2}, {:.2}, {:.2}],\n",
        base / build_s[0].max(1e-9),
        base / build_s[1].max(1e-9),
        base / build_s[2].max(1e-9),
        base / build_s[3].max(1e-9)
    ));
    json.push_str(&format!("  \"identical_selections\": {identical},\n"));
    json.push_str(&format!(
        "  \"refinalize\": {{ \"frozen_postings\": {FROZEN}, \"staged_postings\": {STAGED}, \
         \"merge_ms\": {merge_ms:.1}, \"fresh_rebuild_ms\": {fresh_ms:.1}, \
         \"fresh_over_merge\": {:.2} }}\n",
        fresh_ms / merge_ms.max(1e-9)
    ));
    json.push_str("}\n");

    write_json(&out_path, &json);
}
