//! Records `.seal` container persistence numbers to
//! `BENCH_persist.json`:
//!
//! 1. **Save latency and container size** — `SealEngine::save` (the
//!    atomic temp-file + fsync + rename protocol) per filter kind.
//! 2. **Load latency** — `SealEngine::load_with_threads` (the
//!    *streaming* path: section CRC + decode overlapped with the file
//!    read) with one worker and with one per core, plus the buffered
//!    reference (`std::fs::read` + `load_from_bytes`), so the
//!    streaming overlap shows up as a `buffered / streaming` ratio.
//!
//! In-binary contract check: for every kind measured, the loaded
//! engine answers the whole workload identically to the in-memory
//! engine it was saved from.
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_persist -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! The parallel-load speed-up is only meaningful on multi-core
//! hardware: with one core the CRC workers time-slice one CPU. The
//! JSON records `available_parallelism` alongside the numbers (same
//! caveat as the other BENCH files); sizes, single-thread latencies
//! and the contract check are valid anywhere.

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{out_path, time_ms, write_json};
use seal_core::{FilterKind, ObjectId, Query, SealEngine};
use seal_datagen::QuerySpec;

fn answers(engine: &SealEngine, queries: &[Query]) -> Vec<Vec<ObjectId>> {
    engine
        .search_batch(queries, 1)
        .into_iter()
        .map(|r| r.sorted().answers)
        .collect()
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out = out_path("BENCH_persist.json");

    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let queries = with_thresholds(&workload(&d, QuerySpec::SmallRegion, &cfg), 0.4, 0.4);

    let kinds: [(&str, FilterKind); 3] = [
        (
            "seal",
            FilterKind::Hierarchical {
                max_level: 8,
                budget: 16,
            },
        ),
        ("token", FilterKind::Token),
        ("token-compressed", FilterKind::TokenCompressed),
    ];

    let mut path = std::env::temp_dir();
    path.push(format!("seal-bench-persist-{}.seal", std::process::id()));

    let mut rows = Vec::new();
    for (name, kind) in kinds {
        let engine = SealEngine::build(store.clone(), kind);
        let expect = answers(&engine, &queries);

        let (saved, save_ms) = time_ms(|| engine.save(&path).expect("save must succeed"));
        // Load, check, drop — one engine resident at a time, so the
        // later timings are not paying for the earlier engines' heap.
        let (loaded, load_ms) =
            time_ms(|| SealEngine::load(&path).expect("single-thread load must succeed"));
        assert_eq!(
            answers(&loaded, &queries),
            expect,
            "{name}: loaded engine diverged from the in-memory engine"
        );
        drop(loaded);
        let (loaded_par, load_par_ms) = time_ms(|| {
            SealEngine::load_with_threads(&path, 0).expect("parallel load must succeed")
        });
        assert_eq!(
            answers(&loaded_par, &queries),
            expect,
            "{name}: parallel-loaded engine diverged from the in-memory engine"
        );
        drop(loaded_par);
        let (loaded_buf, load_buf_ms) = time_ms(|| {
            let bytes = std::fs::read(&path).expect("read container");
            SealEngine::load_from_bytes(&bytes, 0).expect("buffered load must succeed")
        });
        assert_eq!(
            answers(&loaded_buf, &queries),
            expect,
            "{name}: buffered-loaded engine diverged from the in-memory engine"
        );
        drop(loaded_buf);

        let overlap = load_buf_ms / load_par_ms.max(1e-9);
        println!(
            "{name}: {:.2} MB saved in {save_ms:.1} ms, streamed in {load_ms:.1} ms \
             (1 thread) / {load_par_ms:.1} ms ({cores} threads), buffered in \
             {load_buf_ms:.1} ms (overlap ×{overlap:.2})",
            saved as f64 / (1024.0 * 1024.0),
        );
        rows.push(format!(
            "    {{ \"filter\": \"{name}\", \"container_bytes\": {saved}, \
             \"save_ms\": {save_ms:.2}, \"load_ms\": {load_ms:.2}, \
             \"load_ms_parallel\": {load_par_ms:.2}, \
             \"load_ms_buffered\": {load_buf_ms:.2}, \
             \"streaming_overlap_ratio\": {overlap:.3} }}"
        ));
    }
    std::fs::remove_file(&path).ok();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \".seal container persistence: atomic save, checksummed load\",\n");
    json.push_str(&format!("  \"objects\": {},\n", store.len()));
    json.push_str(&format!("  \"queries\": {},\n", queries.len()));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(
        "  \"caveat\": \"the parallel-load and streaming-overlap ratios time-slice one CPU \
         when available_parallelism is 1 (expect ~1.0x there); sizes, single-thread \
         latencies and the identical-answers check are valid anywhere\",\n",
    );
    json.push_str("  \"per_filter\": [\n");
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"identical_answers_after_load\": true\n");
    json.push_str("}\n");

    write_json(&out, &json);
}
