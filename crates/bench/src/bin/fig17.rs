//! **Figure 17** — SEAL vs the baselines on the USA-like dataset
//! (same panels as Figure 16).
//!
//! Run: `cargo run --release -p seal-bench --bin fig17 [--objects N]`

use seal_bench::data::{build_store, dataset, BenchConfig, Which};
use seal_bench::figures::run_method_comparison;

fn main() {
    let cfg = BenchConfig::from_args();
    let d = dataset(Which::Usa, &cfg);
    let store = build_store(&d);
    run_method_comparison("Fig 17", &d, store, &cfg);
}
