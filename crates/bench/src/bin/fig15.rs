//! **Figure 15** — hash-based vs hierarchical hybrid signatures under
//! an index-size budget (tau_R = 0.4, tau_T = 0.1), Twitter-like
//! dataset, large-region (a) and small-region (b) workloads.
//!
//! The paper sweeps four index-size budgets (280–400 MB at 1M objects);
//! here the budget knob is the per-token grid count `m_t` for the
//! hierarchical scheme and the bucket count for the hash scheme, and we
//! report the resulting index sizes alongside the elapsed times.
//!
//! Run: `cargo run --release -p seal-bench --bin fig15 [--objects N]`

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{mb, mean_query_ms, print_header, print_row};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

const TAU_R: f64 = 0.4;
const TAU_T: f64 = 0.1;

fn main() {
    let cfg = BenchConfig::from_args();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);

    // Four matched budget steps: hash bucket counts and HSS budgets.
    let steps: [(u64, usize); 4] = [(1 << 14, 8), (1 << 16, 32), (1 << 18, 128), (1 << 20, 512)];
    eprintln!(
        "building {} engine pairs over {} objects…",
        steps.len(),
        store.len()
    );
    let engines: Vec<(SealEngine, SealEngine)> = steps
        .iter()
        .map(|&(buckets, budget)| {
            (
                SealEngine::build(
                    store.clone(),
                    FilterKind::HashHybrid {
                        side: 1024,
                        buckets: Some(buckets),
                    },
                ),
                SealEngine::build(
                    store.clone(),
                    FilterKind::Hierarchical {
                        max_level: 10,
                        budget,
                    },
                ),
            )
        })
        .collect();

    let widths = [10, 14, 12, 14, 12];
    for (panel, spec) in [
        ("a: large-region", QuerySpec::LargeRegion),
        ("b: small-region", QuerySpec::SmallRegion),
    ] {
        let raw = workload(&d, spec, &cfg);
        let qs = with_thresholds(&raw, TAU_R, TAU_T);
        println!("\n## Fig 15({panel})  tau_R={TAU_R} tau_T={TAU_T}");
        print_header(
            &["step", "Hash MB", "Hash ms", "Hier MB", "Hier ms"],
            &widths,
        );
        for (i, (hash, hier)) in engines.iter().enumerate() {
            print_row(
                &[
                    format!("{}", i + 1),
                    mb(hash.index_bytes()),
                    format!("{:.2}", mean_query_ms(&qs, |q| hash.search(q))),
                    mb(hier.index_bytes()),
                    format!("{:.2}", mean_query_ms(&qs, |q| hier.search(q))),
                ],
                &widths,
            );
        }
    }
    println!(
        "\npaper shape to check: hierarchical beats hash at comparable (and\n\
         smaller) index sizes — judicious per-token grids > uniform grids."
    );
}
