//! **Figure 16** — SEAL vs the baselines (IR-tree, Keyword-first,
//! Spatial-first) on the Twitter-like dataset: tau_R sweep (a, c) and
//! tau_T sweep (b, d) for large-region (a, b) and small-region (c, d)
//! workloads.
//!
//! Run: `cargo run --release -p seal-bench --bin fig16 [--objects N]`

use seal_bench::data::{build_store, dataset, BenchConfig, Which};
use seal_bench::figures::run_method_comparison;

fn main() {
    let cfg = BenchConfig::from_args();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    run_method_comparison("Fig 16", &d, store, &cfg);
}
