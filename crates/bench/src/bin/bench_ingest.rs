//! Records online-ingest numbers to `BENCH_ingest.json`:
//!
//! 1. **Refresh latency vs fresh build** — generation 0 over 90% of
//!    the corpus, then the remaining 10% pushed in rounds; each
//!    `LiveEngine::refresh` (store extension + next-generation build,
//!    HSS selections reused for untouched tokens) is timed against a
//!    from-scratch `SealEngine::build` over the final union.
//! 2. **Qps under churn** — `search_batch` throughput over the live
//!    engine while a builder thread runs push → refresh cycles,
//!    compared with the same workload against a quiescent engine.
//!    Readers clone the generation `Arc` per batch and never block on
//!    the builder, so retention should track CPU contention, not lock
//!    contention.
//!
//! In-binary contract check: answers after the final refresh equal a
//! fresh build over the union on the whole workload. Whether each
//! round reused the previous generation's HSS selections is recorded
//! in the JSON (`hss_selections_reused_every_round`), not asserted —
//! a streamed batch that grows the space MBR legitimately forces a
//! fresh build (the recorded run's round 1 does exactly that).
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_ingest -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! The churn-retention number is only meaningful on multi-core
//! hardware: with one core the builder and the servers time-slice one
//! CPU, so retention dips by construction. The JSON records
//! `available_parallelism` alongside the numbers (same caveat as the
//! other BENCH files); refresh-vs-fresh latency and the contract
//! checks are valid anywhere.

use seal_bench::data::{dataset, raw_objects, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{out_path, time_ms, write_json};
use seal_core::{
    BuildOpts, FilterKind, LiveEngine, ObjectStore, RoiObject, SealEngine, SimilarityConfig,
};
use seal_datagen::QuerySpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const MAX_LEVEL: u8 = 8;
const BUDGET: usize = 16;
const ROUNDS: usize = 5;

/// `harness::batch_qps` specialised to a `LiveEngine` dispatch.
fn live_qps(live: &LiveEngine, queries: &[seal_core::Query], threads: usize, passes: usize) -> f64 {
    seal_bench::harness::batch_qps(queries, threads, passes, |q, t| live.search_batch(q, t))
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = out_path("BENCH_ingest.json");

    let d = dataset(Which::Twitter, &cfg);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let queries = with_thresholds(&workload(&d, QuerySpec::SmallRegion, &cfg), 0.4, 0.4);
    let objects: Vec<RoiObject> = raw_objects(&d);
    let initial = (objects.len() * 9 / 10).max(1);
    let stream = objects.len() - initial;
    let batch = (stream / ROUNDS).max(1);
    let kind = FilterKind::Hierarchical {
        max_level: MAX_LEVEL,
        budget: BUDGET,
    };
    let sim = SimilarityConfig::default();

    // --- Refresh latency per round ---------------------------------
    let gen0 = Arc::new(ObjectStore::from_objects(
        objects[..initial].to_vec(),
        d.vocab_size,
    ));
    let (live, gen0_ms) = time_ms(|| LiveEngine::with_opts(gen0, kind, sim, BuildOpts::default()));
    println!("generation 0: {initial} objects in {gen0_ms:.1} ms");

    let mut refresh_s = Vec::new();
    let mut reused_every_round = true;
    let mut pushed = initial;
    while pushed < objects.len() {
        let end = (pushed + batch).min(objects.len());
        live.push_all(objects[pushed..end].iter().cloned());
        let stats = live.refresh();
        println!(
            "refresh: +{} objects in {:.1} ms (generation {}, reused: {})",
            stats.merged,
            stats.build_seconds * 1e3,
            stats.generation,
            stats.scheme_reused,
        );
        refresh_s.push(stats.build_seconds);
        reused_every_round &= stats.scheme_reused;
        pushed = end;
    }
    let mean_refresh = refresh_s.iter().sum::<f64>() / refresh_s.len().max(1) as f64;

    // --- Fresh rebuild over the union, for the ratio ---------------
    let union = Arc::new(ObjectStore::from_objects(objects.clone(), d.vocab_size));
    let (fresh, fresh_ms) = time_ms(|| SealEngine::build(union, kind));
    println!("fresh union build: {fresh_ms:.1} ms");

    // --- Contract check: final generation ≡ fresh build ------------
    let live_answers: Vec<Vec<seal_core::ObjectId>> = live
        .search_batch(&queries, 1)
        .into_iter()
        .map(|r| r.sorted().answers)
        .collect();
    let fresh_answers: Vec<Vec<seal_core::ObjectId>> = fresh
        .search_batch(&queries, 1)
        .into_iter()
        .map(|r| r.sorted().answers)
        .collect();
    assert_eq!(
        live_answers, fresh_answers,
        "post-refresh generation diverged from the fresh union build"
    );

    // --- Qps: quiescent vs under churn -----------------------------
    // Idle baseline on the *live* engine (empty delta, no builder):
    // measuring the bare SealEngine instead would fold LiveEngine's
    // per-batch snapshot cost into the retention ratio and misreport
    // churn cost as wrapper overhead.
    let serve_threads = cores;
    let qps_idle = live_qps(&live, &queries, serve_threads, 3);

    // Rebuild a live engine at 90% and churn the last 10% through it
    // while the workload loops.
    let live = LiveEngine::with_opts(
        Arc::new(ObjectStore::from_objects(
            objects[..initial].to_vec(),
            d.vocab_size,
        )),
        kind,
        sim,
        BuildOpts::default(),
    );
    let done = AtomicBool::new(false);
    let mut served = 0usize;
    let mut churn_wall = 0.0f64;
    let mut refreshes_during_churn = 0usize;
    std::thread::scope(|scope| {
        let builder = scope.spawn(|| {
            let mut n = 0usize;
            let mut pushed = initial;
            while pushed < objects.len() {
                let end = (pushed + batch).min(objects.len());
                live.push_all(objects[pushed..end].iter().cloned());
                live.refresh();
                n += 1;
                pushed = end;
            }
            done.store(true, Ordering::Release);
            n
        });
        let start = std::time::Instant::now();
        while !done.load(Ordering::Acquire) {
            std::hint::black_box(live.search_batch(&queries, serve_threads));
            served += queries.len();
        }
        churn_wall = start.elapsed().as_secs_f64();
        refreshes_during_churn = builder.join().expect("builder thread");
    });
    let qps_churn = served as f64 / churn_wall.max(1e-9);
    let retention = qps_churn / qps_idle.max(1e-9);
    println!(
        "qps idle {qps_idle:.1}, under churn {qps_churn:.1} ({retention:.2}x retention, \
         {refreshes_during_churn} refreshes in {churn_wall:.3}s)"
    );

    // --- JSON ------------------------------------------------------
    let refresh_list = refresh_s
        .iter()
        .map(|s| format!("{s:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"bench\": \"online ingest: generation swaps, refresh latency, qps under churn\",\n",
    );
    json.push_str(&format!("  \"objects\": {},\n", objects.len()));
    json.push_str(&format!(
        "  \"initial\": {initial},\n  \"stream\": {stream},\n  \"rounds\": {},\n",
        refresh_s.len()
    ));
    json.push_str(&format!(
        "  \"hierarchical\": {{ \"max_level\": {MAX_LEVEL}, \"budget\": {BUDGET} }},\n"
    ));
    json.push_str(&format!("  \"queries\": {},\n", queries.len()));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(
        "  \"caveat\": \"churn retention time-slices one CPU when available_parallelism is 1; \
         refresh-vs-fresh latency and the identical-answers check are valid anywhere\",\n",
    );
    json.push_str(&format!(
        "  \"refresh_seconds_per_round\": [{refresh_list}],\n"
    ));
    json.push_str(&format!("  \"mean_refresh_seconds\": {mean_refresh:.4},\n"));
    json.push_str(&format!(
        "  \"fresh_rebuild_seconds\": {:.4},\n",
        fresh_ms / 1e3
    ));
    json.push_str(&format!(
        "  \"fresh_over_refresh\": {:.2},\n",
        (fresh_ms / 1e3) / mean_refresh.max(1e-9)
    ));
    json.push_str(&format!(
        "  \"hss_selections_reused_every_round\": {reused_every_round},\n"
    ));
    json.push_str(&format!("  \"qps_idle\": {qps_idle:.1},\n"));
    json.push_str(&format!("  \"qps_under_churn\": {qps_churn:.1},\n"));
    json.push_str(&format!("  \"churn_retention\": {retention:.2},\n"));
    json.push_str("  \"identical_answers_after_final_refresh\": true\n");
    json.push_str("}\n");

    write_json(&out_path, &json);
}
