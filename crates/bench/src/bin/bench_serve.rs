//! Records serving-tier numbers to `BENCH_serve.json`: end-to-end
//! `/query` latency percentiles (exact, client-side) versus offered
//! qps, with the server **idle** and **under churn** (a writer thread
//! running push → refresh generation swaps throughout the run).
//!
//! The server is spawned in-process on an ephemeral port and driven
//! through `seal_server::client::run_load` — the same open-loop
//! generator `seal loadgen` uses — so queueing delay shows up as tail
//! latency instead of silently lowering the offered rate.
//!
//! In-binary contract checks:
//! * every wire answer for a probe workload equals
//!   `LiveEngine::search` called directly on the engine behind the
//!   server (the network tier adds no answer drift);
//! * every load level completes with ≥ 1 successful (2xx) response
//!   and zero transport errors.
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_serve -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! Single-core caveat (recorded in the JSON): with one core the
//! load-generator clients, the connection threads, the batch workers
//! and the churn writer all time-slice one CPU, so the latency-vs-qps
//! curve is dominated by scheduler pressure and the idle/churn gap is
//! wider than a provisioned box would show. The answer-equality and
//! shed-accounting checks are valid anywhere.

use seal_bench::data::{dataset, raw_objects, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{out_path, write_json};
use seal_core::{BuildOpts, FilterKind, LiveEngine, ObjectStore, SimilarityConfig};
use seal_datagen::QuerySpec;
use seal_server::client::run_load;
use seal_server::{HttpClient, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SECONDS_PER_LEVEL: f64 = 2.0;
const CLIENTS: usize = 8;

fn main() {
    let cfg = BenchConfig::from_args();
    let out = out_path("BENCH_serve.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let data = dataset(Which::Twitter, &cfg);
    let all = raw_objects(&data);
    // Hold the last 10% back as churn fodder for the writer thread.
    let split = all.len() * 9 / 10;
    let store = Arc::new(ObjectStore::from_objects(
        all[..split].to_vec(),
        data.vocab_size,
    ));
    let delta = all[split..].to_vec();
    let kind = FilterKind::Hierarchical {
        max_level: 8,
        budget: 16,
    };
    let live = Arc::new(LiveEngine::with_opts(
        store,
        kind,
        SimilarityConfig::default(),
        BuildOpts::with_threads(0),
    ));

    let server = Server::spawn(live.clone(), ServerConfig::default()).expect("bind server");
    let addr = server.addr().to_string();
    println!("serving {} objects on {addr} ({cores} core(s))", live.len());

    // The query workload, as wire targets.
    let raw = workload(&data, QuerySpec::SmallRegion, &cfg);
    let queries = with_thresholds(&raw, 0.2, 0.2);
    let targets: Vec<(String, String, Vec<u8>)> = queries
        .iter()
        .map(|q| {
            let tokens: Vec<String> = q.tokens.iter().map(|t| t.0.to_string()).collect();
            (
                "GET".to_string(),
                format!(
                    "/query?region={},{},{},{}&tokens={}&tau_r={}&tau_t={}",
                    q.region.min().x,
                    q.region.min().y,
                    q.region.max().x,
                    q.region.max().y,
                    tokens.join(","),
                    q.tau_spatial,
                    q.tau_textual,
                ),
                Vec::new(),
            )
        })
        .collect();

    // Contract: wire answers equal direct engine answers.
    let mut probe = HttpClient::connect(&addr).expect("probe connect");
    for (q, (method, path, body)) in queries.iter().zip(&targets).take(32) {
        let wire = probe.request(method, path, body).expect("probe request");
        assert_eq!(wire.status, 200, "probe {path} answered {}", wire.status);
        let direct = live.search(q).sorted().answers;
        let want = format!(
            "\"answers\":[{}]",
            direct
                .iter()
                .map(|id| id.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let text = wire.text();
        assert!(
            text.contains(&want),
            "wire answer drifted from the engine:\n wire {text}\n want {want}"
        );
    }
    println!("contract: 32 wire answers equal direct engine answers");

    let levels = [50.0, 100.0, 200.0, 400.0];
    let mut idle_rows: Vec<String> = Vec::new();
    for &qps in &levels {
        let r = run_load(
            &addr,
            &targets,
            qps,
            Duration::from_secs_f64(SECONDS_PER_LEVEL),
            CLIENTS,
        )
        .expect("idle load level");
        assert!(r.ok > 0, "idle level {qps}: no successful response");
        assert_eq!(r.errors, 0, "idle level {qps}: transport errors");
        println!("idle  {}", r.to_json());
        idle_rows.push(r.to_json());
    }

    // Under churn: a writer pushes a slice of the held-back delta and
    // refreshes, in a loop, for the whole measurement window.
    let stop = Arc::new(AtomicBool::new(false));
    let swaps = Arc::new(AtomicUsize::new(0));
    let writer = {
        let live = live.clone();
        let stop = stop.clone();
        let swaps = swaps.clone();
        std::thread::spawn(move || {
            let chunk = (delta.len() / 8).max(1);
            let mut next = 0usize;
            while !stop.load(Ordering::Acquire) {
                let end = (next + chunk).min(delta.len());
                if next < end {
                    live.push_all(delta[next..end].iter().cloned());
                    next = end;
                }
                live.refresh();
                swaps.fetch_add(1, Ordering::Relaxed);
                if next >= delta.len() {
                    next = 0; // keep churning: re-push the same slice
                }
            }
        })
    };
    let mut churn_rows: Vec<String> = Vec::new();
    for &qps in &levels {
        let r = run_load(
            &addr,
            &targets,
            qps,
            Duration::from_secs_f64(SECONDS_PER_LEVEL),
            CLIENTS,
        )
        .expect("churn load level");
        assert!(r.ok > 0, "churn level {qps}: no successful response");
        assert_eq!(r.errors, 0, "churn level {qps}: transport errors");
        println!("churn {}", r.to_json());
        churn_rows.push(r.to_json());
    }
    stop.store(true, Ordering::Release);
    writer.join().expect("churn writer");
    let generation_swaps = swaps.load(Ordering::Relaxed);
    println!("churn writer completed {generation_swaps} generation swap(s)");
    assert!(generation_swaps > 0, "the churn phase never swapped");

    let metrics = server.metrics_json();
    println!("server metrics: {metrics}");
    server.shutdown();

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"available_parallelism\": {cores},\n  \
         \"caveat\": \"recorded on {cores} core(s): clients, connection threads, batch workers \
         and the churn writer time-slice the same CPU(s), so the latency-vs-qps curve reflects \
         scheduler pressure; re-record on a multi-core box for provisioning numbers\",\n  \
         \"objects\": {},\n  \"filter\": \"{}\",\n  \"seconds_per_level\": {SECONDS_PER_LEVEL},\n  \
         \"clients\": {CLIENTS},\n  \"generation_swaps_during_churn\": {generation_swaps},\n  \
         \"idle\": [\n    {}\n  ],\n  \"under_churn\": [\n    {}\n  ],\n  \
         \"server_metrics\": {metrics}\n}}\n",
        live.len(),
        live.engine().filter_name(),
        idle_rows.join(",\n    "),
        churn_rows.join(",\n    "),
    );
    write_json(&out, &json);
}
