//! Records the batch-serving throughput baseline to `BENCH_batch.json`:
//! queries/sec for `search_batch` at 1/2/4/8 threads (SEAL default
//! filter over a Twitter-like store), plus the measured speedups.
//!
//! ```text
//! cargo run --release -p seal-bench --bin bench_batch -- \
//!     [--objects N] [--queries N] [--seed N] [--out PATH]
//! ```
//!
//! The scaling numbers are only meaningful on multi-core hardware: the
//! JSON records `available_parallelism` alongside the throughputs so a
//! 1-core CI container's flat curve is not mistaken for contention.

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{batch_qps, out_path, write_json};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = out_path("BENCH_batch.json");

    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::LargeRegion, &cfg);
    let qs = with_thresholds(&raw, 0.2, 0.2);
    let engine = SealEngine::build(store, FilterKind::seal_default());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = [1usize, 2, 4, 8];
    let mut qps = Vec::new();
    for &t in &threads {
        let v = batch_qps(&qs, t, 3, |q, th| engine.search_batch(q, th));
        println!("threads={t:<2} {v:>10.1} q/s");
        qps.push(v);
    }
    let base = qps[0].max(1e-9);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"search_batch throughput (queries/sec)\",\n");
    json.push_str(&format!("  \"filter\": \"{}\",\n", engine.filter_name()));
    json.push_str(&format!("  \"objects\": {},\n", engine.store().len()));
    json.push_str(&format!("  \"queries\": {},\n", qs.len()));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str("  \"threads\": [1, 2, 4, 8],\n");
    json.push_str(&format!(
        "  \"qps\": [{:.1}, {:.1}, {:.1}, {:.1}],\n",
        qps[0], qps[1], qps[2], qps[3]
    ));
    json.push_str(&format!(
        "  \"speedup_vs_1_thread\": [{:.2}, {:.2}, {:.2}, {:.2}]\n",
        qps[0] / base,
        qps[1] / base,
        qps[2] / base,
        qps[3] / base
    ));
    json.push_str("}\n");

    write_json(&out_path, &json);
}
