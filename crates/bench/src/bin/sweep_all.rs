//! Runs every table/figure harness in sequence (the whole evaluation
//! section in one go). Equivalent to running table1 and fig12…fig18
//! binaries individually — handy for regenerating EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p seal-bench --bin sweep_all [--objects N]`

use std::process::Command;

fn main() {
    let pass_through: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in [
        "table1", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    ] {
        println!("\n========== {bin} ==========");
        let status = Command::new(dir.join(bin))
            .args(&pass_through)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
}
