//! **Figure 13** — grid granularity selection: filter time vs
//! verification time of GridFilter as granularity sweeps
//! 64·{1,2,4,…,128} (i.e. 64 → 8192), on the Twitter-like dataset,
//! for large-region (a) and small-region (b) workloads, plus the
//! Section 4.3 cost-model estimate for comparison.
//!
//! Run: `cargo run --release -p seal-bench --bin fig13 [--objects N]`

use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_bench::harness::{print_header, print_row};
use seal_core::granularity::{level_costs, CostModel};
use seal_core::{FilterKind, SealEngine, SearchStats};
use seal_datagen::QuerySpec;

const TAU: f64 = 0.4;

fn main() {
    let cfg = BenchConfig::from_args();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let widths = [12, 12, 14, 12, 12];

    for (panel, spec) in [
        ("a: large-region", QuerySpec::LargeRegion),
        ("b: small-region", QuerySpec::SmallRegion),
    ] {
        let raw = workload(&d, spec, &cfg);
        let qs = with_thresholds(&raw, TAU, TAU);
        println!("\n## Fig 13({panel})  [ms/query]");
        print_header(
            &["granularity", "filter", "verification", "cands", "results"],
            &widths,
        );
        for mult in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let side = 64 * mult;
            let engine = SealEngine::build(store.clone(), FilterKind::Grid { side });
            // Warm-up pass, then two measured passes (noise control).
            for q in &qs {
                std::hint::black_box(engine.search(q));
            }
            let mut agg = SearchStats::new();
            const PASSES: usize = 2;
            for _ in 0..PASSES {
                for q in &qs {
                    let r = engine.search(q);
                    agg.accumulate(&r.stats);
                }
            }
            let n = (PASSES * qs.len()) as f64;
            print_row(
                &[
                    format!("{side}"),
                    format!("{:.3}", agg.filter_time.as_secs_f64() * 1e3 / n),
                    format!("{:.3}", agg.verify_time.as_secs_f64() * 1e3 / n),
                    format!("{:.0}", agg.candidates as f64 / n),
                    format!("{:.1}", agg.results as f64 / n),
                ],
                &widths,
            );
        }

        // The Section 4.3 cost model over the same workload (levels
        // 6..=13 are granularities 64..=8192).
        println!("\n   cost-model estimate (π1=1, π2=10), levels 6..13:");
        let costs = level_costs(&store, &qs, 13, CostModel::default());
        print_header(
            &["granularity", "filterCost", "verifyCost", "total", ""],
            &widths,
        );
        for c in costs.iter().filter(|c| c.level >= 6) {
            print_row(
                &[
                    format!("{}", c.side),
                    format!("{:.0}", c.filter_cost),
                    format!("{:.0}", c.verify_cost),
                    format!("{:.0}", c.total()),
                    String::new(),
                ],
                &widths,
            );
        }
    }
    println!(
        "\npaper shape to check: verification time monotonically decreasing in\n\
         granularity with diminishing returns; filter time falls then rises\n\
         (best near 1024 for large regions)."
    );
}
