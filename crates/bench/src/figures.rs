//! The shared method-comparison harness behind Figures 16 and 17.

use crate::data::{with_thresholds, workload, BenchConfig};
use crate::harness::{mean_query_ms, print_header, print_row};
use seal_core::{FilterKind, ObjectStore, SealEngine};
use seal_datagen::{Dataset, QuerySpec};
use std::sync::Arc;

const TAUS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
const DEFAULT_TAU: f64 = 0.4;

/// Runs the four panels of a method-comparison figure: SEAL vs IR-tree
/// vs Keyword vs Spatial, sweeping each threshold on each workload.
pub fn run_method_comparison(
    figure: &str,
    dataset: &Dataset,
    store: Arc<ObjectStore>,
    cfg: &BenchConfig,
) {
    eprintln!(
        "building 4 engines over {} objects ({})…",
        store.len(),
        dataset.name
    );
    let engines: Vec<(&str, SealEngine)> = vec![
        (
            "IR-Tree",
            SealEngine::build(store.clone(), FilterKind::IrTree { fanout: 64 }),
        ),
        (
            "Keyword",
            SealEngine::build(store.clone(), FilterKind::KeywordFirst),
        ),
        (
            "Spatial",
            SealEngine::build(store.clone(), FilterKind::SpatialFirst),
        ),
        (
            "SEAL",
            SealEngine::build(store.clone(), FilterKind::seal_default()),
        ),
    ];
    let widths = [8, 11, 11, 11, 11];
    let header = ["tau", "IR-Tree", "Keyword", "Spatial", "SEAL"];

    for (panel, spec, sweep_spatial) in [
        ("a: large-region, sweep tau_R", QuerySpec::LargeRegion, true),
        (
            "b: large-region, sweep tau_T",
            QuerySpec::LargeRegion,
            false,
        ),
        ("c: small-region, sweep tau_R", QuerySpec::SmallRegion, true),
        (
            "d: small-region, sweep tau_T",
            QuerySpec::SmallRegion,
            false,
        ),
    ] {
        let raw = workload(dataset, spec, cfg);
        println!("\n## {figure}({panel})  [{}]  [ms/query]", dataset.name);
        print_header(&header, &widths);
        for tau in TAUS {
            let (tr, tt) = if sweep_spatial {
                (tau, DEFAULT_TAU)
            } else {
                (DEFAULT_TAU, tau)
            };
            let qs = with_thresholds(&raw, tr, tt);
            let mut cells = vec![format!("{tau:.1}")];
            for (_, e) in &engines {
                cells.push(format!("{:.2}", mean_query_ms(&qs, |q| e.search(q))));
            }
            print_row(&cells, &widths);
        }
    }
    println!(
        "\npaper shape to check: SEAL fastest everywhere (paper: tens of times);\n\
         IR-tree slowest or near-slowest; Keyword suffers at low tau_T,\n\
         Spatial at low tau_R."
    );
}
