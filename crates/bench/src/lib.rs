//! # seal-bench — shared harness utilities for the SEAL experiments.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the
//! paper; this library holds the shared scaffolding (dataset caching,
//! timing, table printing). See `DESIGN.md` §3 for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod figures;
pub mod harness;
