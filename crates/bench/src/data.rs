//! Dataset/workload construction shared by the figure binaries.

use seal_core::{ObjectStore, Query, RoiObject};
use seal_datagen::{
    generate_queries, twitter_like, usa_like, Dataset, QueryParams, QuerySpec, RawQuery,
    TwitterParams, UsaParams,
};
use seal_text::TokenSet;
use std::sync::Arc;

/// Scale knobs every figure binary accepts on its command line.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Number of objects (paper: 1,000,000; default here 50,000 so the
    /// full suite runs in minutes — pass `--objects 1000000` for the
    /// paper scale).
    pub objects: usize,
    /// Queries per workload (paper: 100).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            objects: 50_000,
            queries: 100,
            seed: 2012,
        }
    }
}

impl BenchConfig {
    /// Parses `--objects N`, `--queries N`, `--seed N` from argv.
    pub fn from_args() -> Self {
        let mut cfg = BenchConfig::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--objects" => cfg.objects = args[i + 1].parse().expect("--objects N"),
                "--queries" => cfg.queries = args[i + 1].parse().expect("--queries N"),
                "--seed" => cfg.seed = args[i + 1].parse().expect("--seed N"),
                _ => {}
            }
            i += 1;
        }
        cfg
    }
}

/// Which of the two evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// The Twitter-like dataset.
    Twitter,
    /// The USA-like dataset.
    Usa,
}

/// Generates a dataset at the configured scale.
pub fn dataset(which: Which, cfg: &BenchConfig) -> Dataset {
    match which {
        Which::Twitter => twitter_like(&TwitterParams {
            count: cfg.objects,
            seed: cfg.seed,
            ..TwitterParams::default()
        }),
        Which::Usa => usa_like(&UsaParams {
            count: cfg.objects,
            seed: cfg.seed,
            ..UsaParams::default()
        }),
    }
}

/// A dataset's records as engine objects, in stream order (shared by
/// [`build_store`] and the ingest bench, which splits the stream into
/// generations itself).
pub fn raw_objects(dataset: &Dataset) -> Vec<RoiObject> {
    dataset
        .objects
        .iter()
        .map(|o| RoiObject::new(o.region, TokenSet::from_ids(o.tokens.iter().copied())))
        .collect()
}

/// Builds the object store from a generated dataset.
pub fn build_store(dataset: &Dataset) -> Arc<ObjectStore> {
    Arc::new(ObjectStore::from_objects(
        raw_objects(dataset),
        dataset.vocab_size,
    ))
}

/// Generates the paper's large-region / small-region workloads.
pub fn workload(dataset: &Dataset, spec: QuerySpec, cfg: &BenchConfig) -> Vec<RawQuery> {
    generate_queries(
        dataset,
        &QueryParams {
            spec,
            count: cfg.queries,
            seed: cfg.seed ^ 0xABCD,
        },
    )
}

/// Instantiates raw queries with thresholds.
pub fn with_thresholds(raw: &[RawQuery], tau_r: f64, tau_t: f64) -> Vec<Query> {
    raw.iter()
        .map(|r| {
            Query::with_token_ids(r.region, r.tokens.iter().copied(), tau_r, tau_t)
                .expect("thresholds in (0,1]")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_store_and_queries() {
        let cfg = BenchConfig {
            objects: 500,
            queries: 10,
            seed: 1,
        };
        let d = dataset(Which::Twitter, &cfg);
        let store = build_store(&d);
        assert_eq!(store.len(), 500);
        let raw = workload(&d, QuerySpec::SmallRegion, &cfg);
        let qs = with_thresholds(&raw, 0.4, 0.4);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.tau_spatial == 0.4));
    }

    #[test]
    fn usa_dataset_builds() {
        let cfg = BenchConfig {
            objects: 300,
            queries: 5,
            seed: 2,
        };
        let d = dataset(Which::Usa, &cfg);
        assert_eq!(d.name, "usa-like");
        let store = build_store(&d);
        assert_eq!(store.len(), 300);
    }
}
