//! End-to-end engine benchmarks: SEAL vs every baseline on one shared
//! workload (the Criterion counterpart of Figures 16/17), plus build
//! costs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

fn small_cfg() -> BenchConfig {
    BenchConfig {
        objects: 10_000,
        queries: 20,
        seed: 5,
    }
}

fn bench_methods(c: &mut Criterion) {
    let cfg = small_cfg();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::LargeRegion, &cfg);
    let qs = with_thresholds(&raw, 0.4, 0.4);
    let mut group = c.benchmark_group("method");
    for (name, kind) in [
        ("seal", FilterKind::seal_default()),
        ("irtree", FilterKind::IrTree { fanout: 64 }),
        ("keyword", FilterKind::KeywordFirst),
        ("spatial", FilterKind::SpatialFirst),
    ] {
        let engine = SealEngine::build(store.clone(), kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |bench, e| {
            bench.iter(|| {
                let mut n = 0usize;
                for q in &qs {
                    n += e.search(q).answers.len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let cfg = BenchConfig {
        objects: 5_000,
        queries: 1,
        seed: 5,
    };
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for (name, kind) in [
        ("token", FilterKind::Token),
        ("grid1024", FilterKind::Grid { side: 1024 }),
        (
            "hier_l9_b16",
            FilterKind::Hierarchical {
                max_level: 9,
                budget: 16,
            },
        ),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(SealEngine::build(store.clone(), kind)).index_bytes())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_methods, bench_builds
}
criterion_main!(benches);
