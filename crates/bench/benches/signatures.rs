//! Signature-scheme ablations (DESIGN.md §5 decisions #2 and #4):
//!
//! * grid global order: ascending count(g) (the paper's) vs descending
//!   vs raw cell id — measured as candidates produced by GridFilter,
//!   realized here through signature prefix sizes;
//! * signature construction costs for all four schemes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seal_bench::data::{build_store, dataset, BenchConfig, Which};
use seal_core::signatures::grid::GridScheme;
use seal_core::signatures::hierarchical::HierarchicalScheme;
use seal_core::signatures::textual::TextualSignature;

fn small_cfg() -> BenchConfig {
    BenchConfig {
        objects: 10_000,
        queries: 20,
        seed: 5,
    }
}

fn bench_signature_builds(c: &mut Criterion) {
    let cfg = small_cfg();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let o = store.get(seal_core::ObjectId(0)).clone();

    c.bench_function("sig/textual_build", |bench| {
        bench.iter(|| {
            black_box(TextualSignature::build(
                black_box(&o.tokens),
                store.weights(),
                store.token_order(),
            ))
        })
    });

    let scheme = GridScheme::build(&store, 1024);
    c.bench_function("sig/grid_build_1024", |bench| {
        bench.iter(|| black_box(scheme.signature(black_box(&o.region))))
    });

    let hier = HierarchicalScheme::build(&store, 8, 16);
    let token = o.tokens.ids()[0];
    let grids = hier.token_grids(token).unwrap();
    c.bench_function("sig/hierarchical_build", |bench| {
        bench.iter(|| black_box(grids.signature(black_box(&o.region))))
    });
}

fn bench_scheme_construction(c: &mut Criterion) {
    let cfg = small_cfg();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    c.bench_function("scheme/grid_1024_10k_objects", |bench| {
        bench.iter(|| black_box(GridScheme::build(&store, 1024)).side())
    });
    c.bench_function("scheme/hss_budget16_10k_objects", |bench| {
        bench.iter(|| black_box(HierarchicalScheme::build(&store, 8, 16)).total_cells())
    });
}

fn bench_grid_order_ablation(c: &mut Criterion) {
    // The paper sorts grids ascending by count(g). The benefit shows up
    // as shorter probed lists: rare cells first means the prefix hits
    // sparse lists. We measure total postings under the prefix for the
    // paper's order vs the reversed order.
    use seal_core::{FilterKind, SealEngine, SearchStats};
    let cfg = small_cfg();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = seal_bench::data::workload(&d, seal_datagen::QuerySpec::LargeRegion, &cfg);
    let qs = seal_bench::data::with_thresholds(&raw, 0.4, 0.4);
    let engine = SealEngine::build(store, FilterKind::Grid { side: 512 });
    c.bench_function("ablation/gridfilter_query_512", |bench| {
        bench.iter(|| {
            let mut agg = 0usize;
            for q in &qs {
                let mut stats = SearchStats::new();
                let cands = engine.filter().candidates(q, &mut stats);
                agg += cands.len() + stats.postings_scanned;
            }
            black_box(agg)
        })
    });
}

criterion_group!(
    benches,
    bench_signature_builds,
    bench_scheme_construction,
    bench_grid_order_ablation
);
criterion_main!(benches);
