//! Microbenchmarks for the geometry substrate: area arithmetic, grid
//! signature enumeration, grid-tree cell math.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seal_geom::{Grid, GridCellId, GridTree, Rect, SpatialSim};

fn bench_rect_ops(c: &mut Criterion) {
    let a = Rect::new(10.0, 10.0, 500.0, 400.0).unwrap();
    let b = Rect::new(200.0, 50.0, 900.0, 700.0).unwrap();
    c.bench_function("rect/intersection_area", |bench| {
        bench.iter(|| black_box(a).intersection_area(black_box(&b)))
    });
    c.bench_function("rect/jaccard", |bench| {
        bench.iter(|| black_box(a).jaccard(black_box(&b)))
    });
}

fn bench_grid_overlaps(c: &mut Criterion) {
    let space = Rect::new(0.0, 0.0, 36_633.0, 36_633.0).unwrap();
    let region = Rect::new(18_000.0, 18_000.0, 18_030.0, 18_020.0).unwrap();
    for side in [256u32, 1024, 8192] {
        let grid = Grid::new(space, side).unwrap();
        c.bench_function(&format!("grid/overlaps/{side}"), |bench| {
            bench.iter(|| {
                let mut acc = 0.0;
                for ov in grid.overlaps(black_box(&region)) {
                    acc += ov.area;
                }
                black_box(acc)
            })
        });
    }
}

fn bench_gridtree(c: &mut Criterion) {
    let space = Rect::new(0.0, 0.0, 36_633.0, 36_633.0).unwrap();
    let tree = GridTree::new(space, 12).unwrap();
    let cell = GridCellId::new(10, 511, 300).unwrap();
    c.bench_function("gridtree/cell_rect", |bench| {
        bench.iter(|| tree.cell_rect(black_box(cell)).unwrap())
    });
    c.bench_function("gridtree/pack_unpack", |bench| {
        bench.iter(|| GridCellId::unpack(black_box(cell).pack()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rect_ops, bench_grid_overlaps, bench_gridtree
}
criterion_main!(benches);
