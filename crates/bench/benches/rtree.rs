//! R-tree substrate benchmarks: STR bulk load, Guttman insertion,
//! overlap queries.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seal_geom::Rect;
use seal_rtree::{RTree, RTreeConfig};

fn random_items(n: usize, seed: u64) -> Vec<(Rect, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * 10_000.0;
            let y = rng.gen::<f64>() * 10_000.0;
            let w = rng.gen::<f64>() * 20.0;
            let h = rng.gen::<f64>() * 20.0;
            (Rect::new(x, y, x + w, y + h).unwrap(), i as u32)
        })
        .collect()
}

fn bench_bulk_load(c: &mut Criterion) {
    let items = random_items(100_000, 1);
    c.bench_function("rtree/bulk_load_100k", |bench| {
        bench.iter_batched(
            || items.clone(),
            |items| black_box(RTree::bulk_load(items, RTreeConfig::default())),
            BatchSize::LargeInput,
        )
    });
}

fn bench_insert(c: &mut Criterion) {
    let items = random_items(10_000, 2);
    c.bench_function("rtree/insert_10k", |bench| {
        bench.iter_batched(
            || items.clone(),
            |items| {
                let mut t = RTree::new(RTreeConfig::default());
                for (r, v) in items {
                    t.insert(r, v);
                }
                black_box(t.len())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_query(c: &mut Criterion) {
    let tree = RTree::bulk_load(random_items(100_000, 3), RTreeConfig::default());
    let probe = Rect::new(4_000.0, 4_000.0, 4_400.0, 4_400.0).unwrap();
    c.bench_function("rtree/search_intersecting", |bench| {
        bench.iter(|| black_box(tree.search_intersecting(black_box(&probe))).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bulk_load, bench_insert, bench_query
}
criterion_main!(benches);
