//! Batch-serving throughput: `search_batch`'s work-stealing loop at
//! 1/2/4/8 threads over a datagen store. This is the contention
//! benchmark for the zero-lock query path — before the
//! `QueryContext` refactor every thread serialized on the filters'
//! scratch mutex, so added threads bought nothing.
//!
//! `cargo bench --bench batch`. For the recorded JSON baseline see
//! `src/bin/bench_batch.rs` (writes `BENCH_batch.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_core::{FilterKind, SealEngine};
use seal_datagen::QuerySpec;

fn bench_batch_threads(c: &mut Criterion) {
    let cfg = BenchConfig {
        objects: 10_000,
        queries: 64,
        seed: 11,
    };
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::SmallRegion, &cfg);
    let qs = with_thresholds(&raw, 0.4, 0.4);
    let engine = SealEngine::build(store, FilterKind::seal_default());
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let results = engine.search_batch(&qs, t);
                black_box(results.iter().map(|r| r.answers.len()).sum::<usize>())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_threads
}
criterion_main!(benches);
