//! Filter ablations (DESIGN.md §5 decision #3): `Sig-Filter` (no
//! prefix, no bounds) vs `Sig-Filter+` (threshold-aware pruning) on
//! textual signatures, plus a per-filter candidate-generation shootout.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use seal_bench::data::{build_store, dataset, with_thresholds, workload, BenchConfig, Which};
use seal_core::{FilterKind, SealEngine, SearchStats};
use seal_datagen::QuerySpec;

fn small_cfg() -> BenchConfig {
    BenchConfig {
        objects: 10_000,
        queries: 20,
        seed: 5,
    }
}

fn bench_prefix_ablation(c: &mut Criterion) {
    let cfg = small_cfg();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::SmallRegion, &cfg);
    let qs = with_thresholds(&raw, 0.4, 0.4);
    let plus = SealEngine::build(store.clone(), FilterKind::Token);
    let basic = SealEngine::build(store.clone(), FilterKind::TokenBasic);
    c.bench_function("ablation/sig_filter_plus(token)", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for q in &qs {
                let mut stats = SearchStats::new();
                total += plus.filter().candidates(q, &mut stats).len();
            }
            black_box(total)
        })
    });
    c.bench_function("ablation/sig_filter_basic(token)", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for q in &qs {
                let mut stats = SearchStats::new();
                total += basic.filter().candidates(q, &mut stats).len();
            }
            black_box(total)
        })
    });
}

fn bench_filter_shootout(c: &mut Criterion) {
    let cfg = small_cfg();
    let d = dataset(Which::Twitter, &cfg);
    let store = build_store(&d);
    let raw = workload(&d, QuerySpec::LargeRegion, &cfg);
    let qs = with_thresholds(&raw, 0.4, 0.4);
    let engines = vec![
        ("token", SealEngine::build(store.clone(), FilterKind::Token)),
        (
            "grid512",
            SealEngine::build(store.clone(), FilterKind::Grid { side: 512 }),
        ),
        (
            "hash512",
            SealEngine::build(
                store.clone(),
                FilterKind::HashHybrid {
                    side: 512,
                    buckets: Some(1 << 18),
                },
            ),
        ),
        (
            "hier",
            SealEngine::build(
                store.clone(),
                FilterKind::Hierarchical {
                    max_level: 9,
                    budget: 16,
                },
            ),
        ),
    ];
    for (name, engine) in &engines {
        c.bench_function(&format!("filter/{name}/search"), |bench| {
            bench.iter(|| {
                let mut answers = 0usize;
                for q in &qs {
                    answers += engine.search(q).answers.len();
                }
                black_box(answers)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_prefix_ablation, bench_filter_shootout
}
criterion_main!(benches);
