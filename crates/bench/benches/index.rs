//! Ablation: threshold-bounded posting lists (Lemma 3's descending
//! sort + binary-search cut) versus a naive linear scan of unsorted
//! lists. This is design decision #1 of DESIGN.md §5.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seal_index::BoundedPostingList;

fn build_list(n: usize, seed: u64) -> (BoundedPostingList, Vec<(u32, f64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = BoundedPostingList::new();
    let mut raw = Vec::with_capacity(n);
    for i in 0..n {
        let bound = rng.gen::<f64>() * 1000.0;
        list.push(i as u32, bound);
        raw.push((i as u32, bound));
    }
    list.finalize();
    (list, raw)
}

fn bench_qualifying(c: &mut Criterion) {
    for n in [1_000usize, 100_000] {
        let (list, raw) = build_list(n, 42);
        // A selective threshold: ~1% of postings qualify.
        let threshold = 990.0;
        c.bench_function(&format!("postings/sorted_cut/{n}"), |bench| {
            bench.iter(|| {
                let q = list.qualifying(black_box(threshold));
                black_box(q.len())
            })
        });
        c.bench_function(&format!("postings/linear_scan/{n}"), |bench| {
            bench.iter(|| {
                let mut count = 0usize;
                for (_, b) in &raw {
                    if *b >= black_box(threshold) {
                        count += 1;
                    }
                }
                black_box(count)
            })
        });
    }
}

fn bench_serialization(c: &mut Criterion) {
    use seal_index::InvertedIndex;
    let mut idx: InvertedIndex<u64> = InvertedIndex::new();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50_000 {
        idx.push(
            rng.gen_range(0..2_000),
            rng.gen_range(0..100_000),
            rng.gen(),
        );
    }
    idx.finalize();
    c.bench_function("index/serialize_50k", |bench| {
        bench.iter(|| black_box(idx.to_bytes()).len())
    });
    let bytes = idx.to_bytes();
    c.bench_function("index/deserialize_50k", |bench| {
        bench.iter(|| {
            let back: InvertedIndex<u64> = InvertedIndex::from_bytes(bytes.clone()).unwrap();
            black_box(back.posting_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_qualifying, bench_serialization
}
criterion_main!(benches);
