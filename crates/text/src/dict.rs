//! String-interning dictionary mapping tokens to dense [`TokenId`]s.

use crate::TokenId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional token dictionary.
///
/// Index construction interns every distinct token string once; all
/// downstream structures (token sets, inverted lists, signatures) work
/// with the dense [`TokenId`] space `0..len()`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    by_name: HashMap<String, TokenId>,
    names: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct tokens interned so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no token has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns a token, returning its id (existing id if already known).
    pub fn intern(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.by_name.get(token) {
            return id;
        }
        let id =
            TokenId(u32::try_from(self.names.len()).expect("more than u32::MAX distinct tokens"));
        self.names.push(token.to_owned());
        self.by_name.insert(token.to_owned(), id);
        id
    }

    /// Interns a batch of tokens, returning their ids in input order
    /// (duplicates map to the same id).
    pub fn intern_all<'a, I: IntoIterator<Item = &'a str>>(&mut self, tokens: I) -> Vec<TokenId> {
        tokens.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Looks up a token's id without interning.
    pub fn get(&self, token: &str) -> Option<TokenId> {
        self.by_name.get(token).copied()
    }

    /// The string for an id, if the id was issued by this dictionary.
    pub fn name(&self, id: TokenId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (TokenId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("coffee");
        let b = d.intern("coffee");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("mocha"), TokenId(0));
        assert_eq!(d.intern("coffee"), TokenId(1));
        assert_eq!(d.intern("starbucks"), TokenId(2));
        assert_eq!(d.intern("coffee"), TokenId(1));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn lookup_both_directions() {
        let mut d = Dictionary::new();
        let id = d.intern("tea");
        assert_eq!(d.get("tea"), Some(id));
        assert_eq!(d.get("ice"), None);
        assert_eq!(d.name(id), Some("tea"));
        assert_eq!(d.name(TokenId(99)), None);
    }

    #[test]
    fn intern_all_preserves_order() {
        let mut d = Dictionary::new();
        let ids = d.intern_all(["a", "b", "a", "c"]);
        assert_eq!(ids, vec![TokenId(0), TokenId(1), TokenId(0), TokenId(2)]);
    }

    #[test]
    fn iter_enumerates_in_id_order() {
        let mut d = Dictionary::new();
        d.intern_all(["x", "y"]);
        let pairs: Vec<(TokenId, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(TokenId(0), "x"), (TokenId(1), "y")]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.get("anything"), None);
    }
}
