//! Token ids and token sets.

use serde::{Deserialize, Serialize};

/// A dense token identifier assigned by a [`crate::Dictionary`].
///
/// `u32` comfortably covers real vocabularies (the paper's Twitter
/// dataset has well under 2^32 distinct tokens) while halving the memory
/// of posting lists compared to `usize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TokenId {
    fn from(v: u32) -> Self {
        TokenId(v)
    }
}

/// A sorted, deduplicated set of token ids — the `o.T` / `q.T` of the
/// paper's data and query model.
///
/// Keeping the ids sorted makes intersection/union a linear merge, which
/// the weighted similarity functions and the verifier rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TokenSet {
    ids: Vec<TokenId>,
}

impl TokenSet {
    /// The empty token set.
    pub fn empty() -> Self {
        TokenSet { ids: Vec::new() }
    }

    /// Builds a token set from arbitrary ids (sorts and deduplicates).
    pub fn from_ids<I: IntoIterator<Item = TokenId>>(ids: I) -> Self {
        let mut v: Vec<TokenId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        TokenSet { ids: v }
    }

    /// Builds a token set from ids already known to be sorted and unique.
    ///
    /// Used on hot paths (index construction); validated in debug builds.
    pub fn from_sorted_unique(ids: Vec<TokenId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not sorted/unique");
        TokenSet { ids }
    }

    /// Number of tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, t: TokenId) -> bool {
        self.ids.binary_search(&t).is_ok()
    }

    /// The tokens in ascending id order.
    #[inline]
    pub fn ids(&self) -> &[TokenId] {
        &self.ids
    }

    /// Heap bytes owned by this set. **Capacity**-based: a `Vec` owns
    /// its whole growth-doubled allocation, not just the initialized
    /// prefix, so length-based accounting undercounts live sets whose
    /// capacity exceeds their length (e.g. after `from_ids` deduped).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<TokenId>()
    }

    /// Iterates over the token ids.
    pub fn iter(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.ids.iter().copied()
    }

    /// Linear-merge intersection with another set.
    pub fn intersection<'a>(&'a self, other: &'a TokenSet) -> impl Iterator<Item = TokenId> + 'a {
        MergeIntersect {
            a: &self.ids,
            b: &other.ids,
            i: 0,
            j: 0,
        }
    }

    /// Number of common tokens.
    pub fn intersection_size(&self, other: &TokenSet) -> usize {
        self.intersection(other).count()
    }

    /// Union size `|a| + |b| − |a ∩ b|`.
    pub fn union_size(&self, other: &TokenSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }
}

impl FromIterator<TokenId> for TokenSet {
    fn from_iter<I: IntoIterator<Item = TokenId>>(iter: I) -> Self {
        TokenSet::from_ids(iter)
    }
}

struct MergeIntersect<'a> {
    a: &'a [TokenId],
    b: &'a [TokenId],
    i: usize,
    j: usize,
}

impl<'a> Iterator for MergeIntersect<'a> {
    type Item = TokenId;

    fn next(&mut self) -> Option<TokenId> {
        while self.i < self.a.len() && self.j < self.b.len() {
            let (x, y) = (self.a[self.i], self.b[self.j]);
            match x.cmp(&y) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    self.i += 1;
                    self.j += 1;
                    return Some(x);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ids: &[u32]) -> TokenSet {
        TokenSet::from_ids(ids.iter().map(|&i| TokenId(i)))
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = ts(&[5, 1, 3, 1, 5]);
        assert_eq!(s.ids(), &[TokenId(1), TokenId(3), TokenId(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_and_empty() {
        let s = ts(&[2, 4]);
        assert!(s.contains(TokenId(2)));
        assert!(!s.contains(TokenId(3)));
        assert!(!s.is_empty());
        assert!(TokenSet::empty().is_empty());
        assert!(!TokenSet::empty().contains(TokenId(0)));
    }

    #[test]
    fn intersection_merge() {
        let a = ts(&[1, 2, 3, 5, 8]);
        let b = ts(&[2, 3, 4, 8, 9]);
        let got: Vec<TokenId> = a.intersection(&b).collect();
        assert_eq!(got, vec![TokenId(2), TokenId(3), TokenId(8)]);
        assert_eq!(a.intersection_size(&b), 3);
        assert_eq!(a.union_size(&b), 7);
    }

    #[test]
    fn intersection_with_empty() {
        let a = ts(&[1, 2]);
        let e = TokenSet::empty();
        assert_eq!(a.intersection_size(&e), 0);
        assert_eq!(a.union_size(&e), 2);
    }

    #[test]
    fn paper_figure1_sets() {
        // q.T = {t1,t2,t3}; o1.T = {t1,t2}: intersection {t1,t2}, union 3.
        let q = ts(&[1, 2, 3]);
        let o1 = ts(&[1, 2]);
        assert_eq!(q.intersection_size(&o1), 2);
        assert_eq!(q.union_size(&o1), 3);
    }

    #[test]
    fn heap_bytes_is_capacity_based() {
        // from_ids dedups after collecting, so capacity can exceed len;
        // the heap report must cover the full allocation.
        let s = ts(&[5, 1, 3, 1, 5, 3, 1]);
        assert_eq!(s.len(), 3);
        assert!(s.heap_bytes() >= s.len() * std::mem::size_of::<TokenId>());
        assert_eq!(TokenSet::empty().heap_bytes(), 0);
    }

    #[test]
    fn from_iterator() {
        let s: TokenSet = [TokenId(9), TokenId(1), TokenId(9)].into_iter().collect();
        assert_eq!(s.ids(), &[TokenId(1), TokenId(9)]);
    }

    #[test]
    fn token_id_conversions() {
        let t: TokenId = 7u32.into();
        assert_eq!(t, TokenId(7));
        assert_eq!(t.index(), 7);
    }
}
