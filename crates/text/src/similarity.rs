//! Weighted token-set similarity functions.
//!
//! Definition 2 of the paper uses the weighted Jaccard coefficient;
//! Section 2.1 notes that Dice, Cosine, etc. from the string-similarity
//! literature are drop-in alternatives, so we provide them all behind the
//! same `(&TokenSet, &TokenSet, &W)` shape.

use crate::{TokenSet, TokenWeights};

/// Weight of the intersection, `Σ_{t∈a∩b} w(t)` — the signature
/// similarity of the textual filter (Section 3.2).
pub fn intersection_weight<W: TokenWeights>(a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
    a.intersection(b).map(|t| w.weight(t)).sum()
}

/// Weight of the union, `Σ_{t∈a∪b} w(t)`.
pub fn union_weight<W: TokenWeights>(a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
    w.set_weight(a) + w.set_weight(b) - intersection_weight(a, b, w)
}

/// Weighted Jaccard similarity (Definition 2):
/// `Σ_{t∈a∩b} w(t) / Σ_{t∈a∪b} w(t)`.
///
/// Two empty (or zero-weight) sets are defined to be identical (1.0 if
/// both are empty, 0.0 otherwise), mirroring the spatial convention.
pub fn weighted_jaccard<W: TokenWeights>(a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
    let union = union_weight(a, b, w);
    if union <= 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    intersection_weight(a, b, w) / union
}

/// Weighted Dice similarity `2·Σ_{a∩b} w / (Σ_a w + Σ_b w)`.
pub fn weighted_dice<W: TokenWeights>(a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
    let denom = w.set_weight(a) + w.set_weight(b);
    if denom <= 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    2.0 * intersection_weight(a, b, w) / denom
}

/// Weighted Cosine similarity `Σ_{a∩b} w / sqrt(Σ_a w · Σ_b w)`.
pub fn weighted_cosine<W: TokenWeights>(a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
    let denom = (w.set_weight(a) * w.set_weight(b)).sqrt();
    if denom <= 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    intersection_weight(a, b, w) / denom
}

/// Weighted overlap coefficient `Σ_{a∩b} w / min(Σ_a w, Σ_b w)`.
pub fn weighted_overlap<W: TokenWeights>(a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
    let denom = w.set_weight(a).min(w.set_weight(b));
    if denom <= 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    intersection_weight(a, b, w) / denom
}

/// Which textual similarity function a SEAL deployment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TextualSimFn {
    /// Weighted Jaccard (the paper's default, Definition 2).
    Jaccard,
    /// Weighted Dice.
    Dice,
    /// Weighted Cosine.
    Cosine,
    /// Weighted overlap coefficient.
    Overlap,
}

impl TextualSimFn {
    /// Evaluates the chosen function.
    pub fn eval<W: TokenWeights>(self, a: &TokenSet, b: &TokenSet, w: &W) -> f64 {
        match self {
            TextualSimFn::Jaccard => weighted_jaccard(a, b, w),
            TextualSimFn::Dice => weighted_dice(a, b, w),
            TextualSimFn::Cosine => weighted_cosine(a, b, w),
            TextualSimFn::Overlap => weighted_overlap(a, b, w),
        }
    }

    /// The signature-similarity threshold `c_T` derived from a textual
    /// threshold `τ_T` for a query set `q` (Section 3.2 for Jaccard;
    /// the analogous prefix-filtering bounds for the other functions).
    ///
    /// The bound must satisfy: `sim(q,o) ≥ τ` ⇒
    /// `Σ_{t∈q∩o} w(t) ≥ c_T`. For Jaccard the paper uses
    /// `c_T = τ · Σ_{t∈q} w(t)`; Dice gives `τ/2 · Σ_q w`; Cosine gives
    /// `τ · sqrt(Σ_q w · w_min_other)` which we relax to the safe
    /// `τ² · Σ_q w` lower bound; Overlap cannot be bounded by the query
    /// weight alone, so its safe bound is 0 (no textual pruning).
    pub fn signature_threshold<W: TokenWeights>(self, q: &TokenSet, w: &W, tau: f64) -> f64 {
        let qw = w.set_weight(q);
        match self {
            TextualSimFn::Jaccard => tau * qw,
            TextualSimFn::Dice => tau * qw / 2.0,
            // cosine(q,o) ≥ τ ⇒ I ≥ τ·sqrt(Wq·Wo) ≥ τ·sqrt(Wq·I)
            // (since Wo ≥ I) ⇒ I ≥ τ²·Wq.
            TextualSimFn::Cosine => tau * tau * qw,
            TextualSimFn::Overlap => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdfWeights, TokenId, UniformWeights};

    fn ts(ids: &[u32]) -> TokenSet {
        TokenSet::from_ids(ids.iter().map(|&i| TokenId(i)))
    }

    fn fig1_weights() -> IdfWeights {
        // t1..t5 are ids 0..4 with the paper's published idfs.
        IdfWeights::from_values(vec![0.8, 0.3, 0.8, 1.3, 0.6])
    }

    #[test]
    fn paper_example_simt_q_o1() {
        // simT(q, o1) = (w(t1)+w(t2)) / (w(t1)+w(t2)+w(t3))
        //            = 1.1 / 1.9 = 0.578...  (the paper rounds to 0.58)
        let w = fig1_weights();
        let q = ts(&[0, 1, 2]);
        let o1 = ts(&[0, 1]);
        let sim = weighted_jaccard(&q, &o1, &w);
        assert!((sim - 1.1 / 1.9).abs() < 1e-12);
    }

    #[test]
    fn paper_example_simt_q_o2_is_one() {
        let w = fig1_weights();
        let q = ts(&[0, 1, 2]);
        let o2 = ts(&[0, 1, 2]);
        assert_eq!(weighted_jaccard(&q, &o2, &w), 1.0);
    }

    #[test]
    fn figure4_signature_similarities() {
        // Figure 4 lists sim(ST(q), ST(o)) for the candidates:
        // o1: 1.1, o2: 1.9, o3: 0.8, o4: 1.1, o5: 1.1.
        let w = fig1_weights();
        let q = ts(&[0, 1, 2]);
        let cases: &[(&[u32], f64)] = &[
            (&[0, 1], 1.1),
            (&[0, 1, 2], 1.9),
            (&[2, 3, 4], 0.8),
            (&[1, 2, 4], 1.1),
            (&[0, 1, 4], 1.1),
        ];
        for (ids, expect) in cases {
            let o = ts(ids);
            assert!(
                (intersection_weight(&q, &o, &w) - expect).abs() < 1e-12,
                "object {ids:?}"
            );
        }
    }

    #[test]
    fn figure4_threshold_ct() {
        // τT = 0.3, Σ_{t∈q} w(t) = 1.9 ⇒ cT = 0.57.
        let w = fig1_weights();
        let q = ts(&[0, 1, 2]);
        let ct = TextualSimFn::Jaccard.signature_threshold(&q, &w, 0.3);
        assert!((ct - 0.57).abs() < 1e-12);
    }

    #[test]
    fn jaccard_bounds_and_symmetry() {
        let w = fig1_weights();
        let a = ts(&[0, 2, 4]);
        let b = ts(&[1, 2, 3]);
        let s = weighted_jaccard(&a, &b, &w);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(s, weighted_jaccard(&b, &a, &w));
        assert_eq!(weighted_jaccard(&a, &a, &w), 1.0);
    }

    #[test]
    fn empty_set_conventions() {
        let w = UniformWeights;
        let e = TokenSet::empty();
        let a = ts(&[1]);
        assert_eq!(weighted_jaccard(&e, &e, &w), 1.0);
        assert_eq!(weighted_jaccard(&a, &e, &w), 0.0);
        assert_eq!(weighted_dice(&e, &e, &w), 1.0);
        assert_eq!(weighted_cosine(&a, &e, &w), 0.0);
        assert_eq!(weighted_overlap(&e, &e, &w), 1.0);
    }

    #[test]
    fn dice_vs_jaccard_ordering() {
        // Dice ≥ Jaccard for any pair (standard identity d = 2j/(1+j)).
        let w = fig1_weights();
        let a = ts(&[0, 1, 4]);
        let b = ts(&[1, 2, 3]);
        let j = weighted_jaccard(&a, &b, &w);
        let d = weighted_dice(&a, &b, &w);
        assert!(d >= j);
        assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-12);
    }

    #[test]
    fn cosine_and_overlap_reflexive() {
        let w = fig1_weights();
        let a = ts(&[0, 3]);
        assert!((weighted_cosine(&a, &a, &w) - 1.0).abs() < 1e-12);
        assert!((weighted_overlap(&a, &a, &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_bounds_are_safe() {
        // For each function: sim(q,o) ≥ τ must imply
        // intersection_weight ≥ signature_threshold.
        let w = fig1_weights();
        let q = ts(&[0, 1, 2, 3]);
        let candidates: Vec<TokenSet> = vec![
            ts(&[0]),
            ts(&[0, 1]),
            ts(&[1, 2, 3]),
            ts(&[0, 1, 2, 3]),
            ts(&[2, 3, 4]),
            ts(&[4]),
        ];
        for f in [
            TextualSimFn::Jaccard,
            TextualSimFn::Dice,
            TextualSimFn::Cosine,
            TextualSimFn::Overlap,
        ] {
            for tau in [0.1, 0.3, 0.5, 0.8] {
                let c = f.signature_threshold(&q, &w, tau);
                for o in &candidates {
                    let sim = f.eval(&q, o, &w);
                    if sim >= tau {
                        let iw = intersection_weight(&q, o, &w);
                        assert!(
                            iw + 1e-12 >= c,
                            "{f:?} τ={tau}: sim={sim} but I={iw} < c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn eval_dispatch() {
        let w = UniformWeights;
        let a = ts(&[1, 2]);
        let b = ts(&[2, 3]);
        assert!((TextualSimFn::Jaccard.eval(&a, &b, &w) - 1.0 / 3.0).abs() < 1e-12);
        assert!((TextualSimFn::Dice.eval(&a, &b, &w) - 0.5).abs() < 1e-12);
        assert!((TextualSimFn::Cosine.eval(&a, &b, &w) - 0.5).abs() < 1e-12);
        assert!((TextualSimFn::Overlap.eval(&a, &b, &w) - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{TokenId, UniformWeights};
    use proptest::prelude::*;

    fn arb_set() -> impl Strategy<Value = TokenSet> {
        proptest::collection::vec(0u32..50, 0..20)
            .prop_map(|v| TokenSet::from_ids(v.into_iter().map(TokenId)))
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval(a in arb_set(), b in arb_set()) {
            let s = weighted_jaccard(&a, &b, &UniformWeights);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_symmetric(a in arb_set(), b in arb_set()) {
            let w = UniformWeights;
            prop_assert!((weighted_jaccard(&a, &b, &w) - weighted_jaccard(&b, &a, &w)).abs() < 1e-12);
        }

        #[test]
        fn jaccard_reflexive(a in arb_set()) {
            prop_assert_eq!(weighted_jaccard(&a, &a, &UniformWeights), 1.0);
        }

        #[test]
        fn unweighted_jaccard_matches_set_counts(a in arb_set(), b in arb_set()) {
            let w = UniformWeights;
            let expect = if a.union_size(&b) == 0 {
                1.0
            } else {
                a.intersection_size(&b) as f64 / a.union_size(&b) as f64
            };
            prop_assert!((weighted_jaccard(&a, &b, &w) - expect).abs() < 1e-12);
        }
    }
}
