//! # seal-text — text substrate for SEAL
//!
//! SEAL's textual side (Section 2.1, Definition 2) models every object's
//! description as a *weighted token set*: tokens are weighted by inverse
//! document frequency `w(t) = ln(|O| / count(t, O))` and compared with
//! the weighted Jaccard coefficient. This crate provides that machinery
//! from scratch:
//!
//! * [`TokenId`] / [`Dictionary`] — string interning so the search
//!   structures deal only in dense `u32` ids.
//! * [`TokenSet`] — a sorted, deduplicated token-id set with fast merge
//!   intersections.
//! * [`IdfWeights`] / [`TokenWeights`] — corpus-derived idf weighting
//!   exactly as the paper defines it, plus the trait the similarity
//!   functions are generic over.
//! * [`similarity`] — weighted Jaccard (Definition 2), Dice, Cosine and
//!   Overlap variants mentioned as drop-in alternatives (§2.1).
//! * [`GlobalTokenOrder`] — the global signature-element order needed by
//!   prefix filtering (§4.2: "we can sort tokens in descending order of
//!   their idfs").
//! * [`tokenize`] — a small text tokenizer used by the examples and the
//!   synthetic data generators.
//!
//! ```
//! use seal_text::{Dictionary, IdfWeights, TokenSet, similarity};
//!
//! let mut dict = Dictionary::new();
//! let docs = vec![
//!     dict.intern_all(["mocha", "coffee"]),
//!     dict.intern_all(["mocha", "coffee", "starbucks"]),
//!     dict.intern_all(["starbucks", "ice", "tea"]),
//! ];
//! let weights = IdfWeights::from_corpus(dict.len(), docs.iter());
//! let q = TokenSet::from_ids(docs[1].iter().copied());
//! let o = TokenSet::from_ids(docs[0].iter().copied());
//! let sim = similarity::weighted_jaccard(&q, &o, &weights);
//! assert!(sim > 0.0 && sim < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dict;
mod order;
pub mod similarity;
mod token;
mod tokenize;
mod weights;

pub use dict::Dictionary;
pub use order::GlobalTokenOrder;
pub use token::{TokenId, TokenSet};
pub use tokenize::{tokenize, Tokenizer};
pub use weights::{IdfWeights, TokenWeights, UniformWeights};
