//! Global token order for prefix filtering (Section 4.2).
//!
//! Prefix filtering needs every signature sorted by one *global* element
//! order. For textual signatures the paper sorts tokens "in descending
//! order of their idfs": rare (high-weight) tokens come first, so the
//! prefix that must retain weight ≥ c is short and its inverted lists
//! are short too.

use crate::{TokenId, TokenWeights};
use serde::{Deserialize, Serialize};

/// A fixed permutation of the token-id space giving each token a rank;
/// lower rank = earlier in every signature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalTokenOrder {
    /// `rank[token.index()]` = position of the token in the global order.
    rank: Vec<u32>,
}

impl GlobalTokenOrder {
    /// Builds the paper's order: descending weight, ties broken by id so
    /// the order is total and deterministic.
    pub fn by_descending_weight<W: TokenWeights>(vocab_size: usize, weights: &W) -> Self {
        let mut ids: Vec<u32> = (0..vocab_size as u32).collect();
        ids.sort_by(|&a, &b| {
            let (wa, wb) = (weights.weight(TokenId(a)), weights.weight(TokenId(b)));
            // total_cmp: a NaN weight must still yield one total,
            // deterministic permutation (partial_cmp → Equal made the
            // comparator inconsistent, violating sort's contract).
            wb.total_cmp(&wa).then(a.cmp(&b))
        });
        let mut rank = vec![0u32; vocab_size];
        for (pos, &id) in ids.iter().enumerate() {
            rank[id as usize] = pos as u32;
        }
        GlobalTokenOrder { rank }
    }

    /// An identity order (by token id) — used by ablation benchmarks to
    /// quantify how much the idf order matters.
    pub fn identity(vocab_size: usize) -> Self {
        GlobalTokenOrder {
            rank: (0..vocab_size as u32).collect(),
        }
    }

    /// The rank of a token. Unknown tokens (beyond the vocabulary the
    /// order was built for) sort last, after all ranked tokens.
    #[inline]
    pub fn rank(&self, t: TokenId) -> u64 {
        self.rank
            .get(t.index())
            .map(|&r| u64::from(r))
            .unwrap_or(u64::from(u32::MAX) + 1 + u64::from(t.0))
    }

    /// Sorts a token slice in place by the global order.
    pub fn sort(&self, tokens: &mut [TokenId]) {
        tokens.sort_by_key(|&t| self.rank(t));
    }

    /// Number of tokens the order covers.
    pub fn vocab_size(&self) -> usize {
        self.rank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdfWeights;

    #[test]
    fn descending_weight_order_matches_figure4() {
        // Figure 1 idfs: t1:0.8 t2:0.3 t3:0.8 t4:1.3 t5:0.6 (ids 0..4).
        // Descending: t4(1.3), t1(0.8), t3(0.8), t5(0.6), t2(0.3);
        // the t1/t3 tie breaks by id. Figure 4's query signature is
        // probed in order t1, t3, t2 — consistent with this order.
        let w = IdfWeights::from_values(vec![0.8, 0.3, 0.8, 1.3, 0.6]);
        let order = GlobalTokenOrder::by_descending_weight(5, &w);
        let mut q = vec![TokenId(0), TokenId(1), TokenId(2)];
        order.sort(&mut q);
        assert_eq!(q, vec![TokenId(0), TokenId(2), TokenId(1)]);
        // Full vocabulary order:
        let mut all: Vec<TokenId> = (0..5).map(TokenId).collect();
        order.sort(&mut all);
        assert_eq!(
            all,
            vec![TokenId(3), TokenId(0), TokenId(2), TokenId(4), TokenId(1)]
        );
    }

    #[test]
    fn nan_weights_still_yield_a_total_deterministic_order() {
        // Regression for the NaN-unsound partial_cmp comparator:
        // `TokenWeights` is a trait, so nothing stops an impl from
        // producing NaN — the order must stay a permutation and be
        // identical across runs regardless.
        let w = IdfWeights::from_values(vec![0.5, f64::NAN, 0.7, f64::NAN, 0.1]);
        let a = GlobalTokenOrder::by_descending_weight(5, &w);
        let b = GlobalTokenOrder::by_descending_weight(5, &w);
        let mut ranks: Vec<u64> = (0..5).map(|i| a.rank(TokenId(i))).collect();
        assert_eq!(
            ranks,
            (0..5).map(|i| b.rank(TokenId(i))).collect::<Vec<u64>>(),
            "deterministic across runs"
        );
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4], "still a permutation");
        // Finite weights keep their relative descending order.
        assert!(a.rank(TokenId(2)) < a.rank(TokenId(0)));
        assert!(a.rank(TokenId(0)) < a.rank(TokenId(4)));
    }

    #[test]
    fn ranks_are_a_permutation() {
        let w = IdfWeights::from_values(vec![0.5, 0.5, 0.5, 0.1]);
        let order = GlobalTokenOrder::by_descending_weight(4, &w);
        let mut ranks: Vec<u64> = (0..4).map(|i| order.rank(TokenId(i))).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_tokens_sort_last_deterministically() {
        let order = GlobalTokenOrder::identity(3);
        assert!(order.rank(TokenId(5)) > order.rank(TokenId(2)));
        assert!(order.rank(TokenId(6)) > order.rank(TokenId(5)));
    }

    #[test]
    fn identity_order() {
        let order = GlobalTokenOrder::identity(4);
        let mut v = vec![TokenId(3), TokenId(0), TokenId(2)];
        order.sort(&mut v);
        assert_eq!(v, vec![TokenId(0), TokenId(2), TokenId(3)]);
        assert_eq!(order.vocab_size(), 4);
    }
}
