//! A small text tokenizer for the examples and data generators.
//!
//! The paper extracts "frequent words" from tweets as user tokens; for
//! the reproduction we need a deterministic tokenizer that lowercases,
//! splits on non-alphanumeric boundaries, and optionally drops stopwords
//! and very short fragments.

/// Configurable tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    min_len: usize,
    stopwords: Vec<String>,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            min_len: 2,
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A minimal English stopword list — enough to keep the examples' token
/// sets meaningful without pulling in an IR dependency.
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "we", "were", "will", "with",
];

impl Tokenizer {
    /// A tokenizer with no stopword removal and no length floor.
    pub fn raw() -> Self {
        Tokenizer {
            min_len: 1,
            stopwords: Vec::new(),
        }
    }

    /// Sets the minimum token length kept.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len;
        self
    }

    /// Replaces the stopword list.
    pub fn with_stopwords<I: IntoIterator<Item = String>>(mut self, words: I) -> Self {
        self.stopwords = words.into_iter().collect();
        self
    }

    /// Tokenizes text into lowercase alphanumeric terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|s| !s.is_empty())
            .map(|s| s.to_lowercase())
            .filter(|s| s.chars().count() >= self.min_len)
            .filter(|s| !self.stopwords.iter().any(|w| w == s))
            .collect()
    }
}

/// Tokenizes with the default settings (stopwords removed, length ≥ 2).
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::default().tokenize(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let toks = tokenize("Starbucks Mocha, COFFEE!");
        assert_eq!(toks, vec!["starbucks", "mocha", "coffee"]);
    }

    #[test]
    fn removes_stopwords_and_short_tokens() {
        let toks = tokenize("the best tea in NYC is at x");
        assert_eq!(toks, vec!["best", "tea", "nyc"]);
    }

    #[test]
    fn raw_keeps_everything() {
        let toks = Tokenizer::raw().tokenize("a b the");
        assert_eq!(toks, vec!["a", "b", "the"]);
    }

    #[test]
    fn unicode_boundaries() {
        let toks = tokenize("café-au-lait ☕ déjà");
        assert_eq!(toks, vec!["café", "au", "lait", "déjà"]);
    }

    #[test]
    fn custom_configuration() {
        let t = Tokenizer::raw()
            .with_min_len(3)
            .with_stopwords(vec!["foo".to_string()]);
        assert_eq!(t.tokenize("foo bar ba zap"), vec!["bar", "zap"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("route 66 cafe"), vec!["route", "66", "cafe"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,.;  ").is_empty());
    }
}
