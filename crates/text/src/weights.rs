//! Token weighting (idf) as defined in Section 2.1 of the paper.

use crate::{TokenId, TokenSet};
use serde::{Deserialize, Serialize};

/// Anything that can assign a non-negative weight to a token.
///
/// The similarity functions and signature generators are generic over
/// this trait so tests can use [`UniformWeights`] while production code
/// uses corpus [`IdfWeights`].
pub trait TokenWeights {
    /// The weight `w(t) ≥ 0` of a token.
    fn weight(&self, t: TokenId) -> f64;

    /// Total weight of a token set, `Σ_{t∈S} w(t)`.
    fn set_weight(&self, s: &TokenSet) -> f64 {
        s.iter().map(|t| self.weight(t)).sum()
    }
}

/// Every token weighs 1.0 — plain (unweighted) Jaccard.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformWeights;

impl TokenWeights for UniformWeights {
    #[inline]
    fn weight(&self, _t: TokenId) -> f64 {
        1.0
    }
}

/// Inverse-document-frequency weights:
/// `w(t) = ln(|O| / count(t, O))` (Section 2.1).
///
/// Tokens never seen in the corpus (e.g. brand-new query keywords) fall
/// back to the weight of a frequency-1 token, `ln(|O|)`, which is the
/// natural limit of the formula and keeps query weights finite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdfWeights {
    weights: Vec<f64>,
    fallback: f64,
    corpus_size: usize,
}

impl IdfWeights {
    /// Computes idf weights from a corpus of token-id documents.
    ///
    /// `vocab_size` must be at least the number of distinct ids used (the
    /// dictionary's `len()`); `count(t, O)` is the number of *documents*
    /// containing `t`, exactly the paper's `count`.
    pub fn from_corpus<'a, I, D>(vocab_size: usize, docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a TokenId>,
    {
        let mut df = vec![0u64; vocab_size];
        let mut n: usize = 0;
        let mut seen: Vec<u32> = Vec::new();
        for doc in docs {
            n += 1;
            seen.clear();
            for &t in doc {
                seen.push(t.0);
            }
            seen.sort_unstable();
            seen.dedup();
            for &t in &seen {
                if let Some(slot) = df.get_mut(t as usize) {
                    *slot += 1;
                }
            }
        }
        Self::from_document_frequencies(n, &df)
    }

    /// Builds weights from precomputed document frequencies.
    pub fn from_document_frequencies(corpus_size: usize, df: &[u64]) -> Self {
        let n = corpus_size.max(1) as f64;
        let weights = df
            .iter()
            .map(|&c| {
                if c == 0 {
                    n.ln()
                } else {
                    // Frequencies above |O| (shouldn't happen, but defend
                    // against caller bugs) clamp to weight 0.
                    (n / c as f64).ln().max(0.0)
                }
            })
            .collect();
        IdfWeights {
            weights,
            fallback: n.ln(),
            corpus_size,
        }
    }

    /// Builds weights from explicit per-token values (used by tests and
    /// by the paper's worked example where idfs are given directly).
    pub fn from_values(values: Vec<f64>) -> Self {
        let fallback = values.iter().copied().fold(0.0_f64, f64::max);
        IdfWeights {
            weights: values,
            fallback,
            corpus_size: 0,
        }
    }

    /// Number of documents the weights were computed from.
    pub fn corpus_size(&self) -> usize {
        self.corpus_size
    }

    /// Number of weighted tokens.
    pub fn vocab_size(&self) -> usize {
        self.weights.len()
    }
}

impl TokenWeights for IdfWeights {
    #[inline]
    fn weight(&self, t: TokenId) -> f64 {
        self.weights
            .get(t.index())
            .copied()
            .unwrap_or(self.fallback)
    }
}

impl<W: TokenWeights + ?Sized> TokenWeights for &W {
    #[inline]
    fn weight(&self, t: TokenId) -> f64 {
        (**self).weight(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&i| TokenId(i)).collect()
    }

    #[test]
    fn idf_matches_paper_formula() {
        // 4 documents; token 0 appears in 2 of them: w = ln(4/2) = ln 2.
        let docs = [doc(&[0, 1]), doc(&[0]), doc(&[1]), doc(&[2])];
        let w = IdfWeights::from_corpus(3, docs.iter());
        assert!((w.weight(TokenId(0)) - (2.0f64).ln()).abs() < 1e-12);
        assert!((w.weight(TokenId(1)) - (2.0f64).ln()).abs() < 1e-12);
        assert!((w.weight(TokenId(2)) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(w.corpus_size(), 4);
        assert_eq!(w.vocab_size(), 3);
    }

    #[test]
    fn duplicate_tokens_in_a_document_count_once() {
        let docs = [doc(&[0, 0, 0]), doc(&[1])];
        let w = IdfWeights::from_corpus(2, docs.iter());
        // df(0) = 1, not 3.
        assert!((w.weight(TokenId(0)) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn unseen_token_falls_back_to_max_idf() {
        let docs = [doc(&[0]), doc(&[0])];
        let w = IdfWeights::from_corpus(1, docs.iter());
        // Query asks about TokenId(7), never interned: fallback ln(2).
        assert!((w.weight(TokenId(7)) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn zero_df_token_gets_max_weight() {
        let w = IdfWeights::from_document_frequencies(8, &[0, 8, 4]);
        assert!((w.weight(TokenId(0)) - (8.0f64).ln()).abs() < 1e-12);
        assert_eq!(w.weight(TokenId(1)), 0.0, "ubiquitous token weighs 0");
        assert!((w.weight(TokenId(2)) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn from_values_paper_figure1() {
        // Figure 1's published idfs: t1:0.8 t2:0.3 t3:0.8 t4:1.3 t5:0.6.
        let w = IdfWeights::from_values(vec![0.8, 0.3, 0.8, 1.3, 0.6]);
        assert_eq!(w.weight(TokenId(3)), 1.3);
        let s = TokenSet::from_ids([TokenId(0), TokenId(1), TokenId(2)]);
        // w(q.T) for q = {t1,t2,t3} is 1.9 (used by Figure 4's cT).
        assert!((w.set_weight(&s) - 1.9).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights() {
        let w = UniformWeights;
        assert_eq!(w.weight(TokenId(42)), 1.0);
        let s = TokenSet::from_ids([TokenId(1), TokenId(2), TokenId(3)]);
        assert_eq!(w.set_weight(&s), 3.0);
    }

    #[test]
    fn weights_by_reference() {
        fn total<W: TokenWeights>(w: W, s: &TokenSet) -> f64 {
            w.set_weight(s)
        }
        let w = UniformWeights;
        let s = TokenSet::from_ids([TokenId(0), TokenId(1)]);
        assert_eq!(total(w, &s), 2.0);
    }
}
