//! # seal — facade over the SEAL workspace
//!
//! A Rust reproduction of *SEAL: Spatio-Textual Similarity Search*
//! (Fan, Li, Zhou, Chen, Hu — PVLDB 5(9), 2012), grown toward a
//! production-scale serving system. This crate re-exports the
//! workspace's public surface; the implementation lives in the
//! `crates/` members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`](seal_core) | engine, filters, signatures, baselines |
//! | [`index`](seal_index) | arena-backed threshold-bounded inverted indexes |
//! | [`geom`](seal_geom) / [`text`](seal_text) | geometry and token primitives |
//! | [`rtree`](seal_rtree) | R-tree for the spatial baselines |
//! | [`datagen`](seal_datagen) | synthetic datasets + query workloads |
//!
//! ## The batch-serving pattern
//!
//! The query path is **zero-contention**: filters keep no internal
//! locks, and all per-query scratch lives in a caller-owned
//! [`QueryContext`](seal_core::QueryContext). For throughput-oriented
//! serving, reuse one context per worker thread so that a warm query
//! allocates nothing:
//!
//! ```
//! use seal_core::{FilterKind, ObjectStore, Query, QueryContext, SealEngine};
//! use seal_geom::Rect;
//! use std::sync::Arc;
//!
//! let store = ObjectStore::from_labeled(vec![
//!     (Rect::new(0.0, 0.0, 40.0, 40.0).unwrap(), vec!["coffee", "mocha"]),
//!     (Rect::new(10.0, 10.0, 50.0, 50.0).unwrap(), vec!["coffee", "starbucks", "mocha"]),
//!     (Rect::new(80.0, 80.0, 120.0, 120.0).unwrap(), vec!["tea", "ice"]),
//! ]);
//! let engine = SealEngine::build(Arc::new(store), FilterKind::seal_default());
//!
//! // One long-lived context per worker thread (search_batch does this
//! // internally; do the same when driving the engine yourself).
//! let mut ctx = QueryContext::new();
//! let dict = engine.store().dictionary().unwrap();
//! let q = Query::with_token_ids(
//!     Rect::new(5.0, 5.0, 45.0, 45.0).unwrap(),
//!     ["coffee", "mocha"].iter().filter_map(|t| dict.get(t)),
//!     0.3,
//!     0.3,
//! ).unwrap();
//! assert_eq!(engine.search_with_ctx(&q, &mut ctx).answers.len(), 2);
//! ```
//!
//! `SealEngine::search_batch(&queries, threads)` runs the same path
//! over an atomic-counter work-stealing loop — one context per worker,
//! no locks anywhere on the read path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use seal_core;
pub use seal_datagen;
pub use seal_geom;
pub use seal_index;
pub use seal_rtree;
pub use seal_text;
