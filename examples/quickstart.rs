//! Quickstart: build a SEAL engine over a handful of labeled
//! regions-of-interest and run one spatio-textual similarity query.
//!
//! Run with: `cargo run --example quickstart`

use seal_core::{FilterKind, ObjectStore, Query, SealEngine};
use seal_geom::Rect;
use std::sync::Arc;

fn main() {
    // 1. A tiny collection of ROIs: coffee shops and parks around a
    //    city, each with a service region and descriptive tags.
    let store = ObjectStore::from_labeled(vec![
        (
            rect(0.0, 0.0, 40.0, 40.0),
            vec!["coffee", "mocha", "espresso"],
        ),
        (
            rect(10.0, 10.0, 50.0, 50.0),
            vec!["coffee", "starbucks", "mocha"],
        ),
        (rect(30.0, 30.0, 70.0, 70.0), vec!["tea", "bubble", "boba"]),
        (
            rect(80.0, 80.0, 120.0, 120.0),
            vec!["park", "dogs", "trails"],
        ),
        (rect(82.0, 78.0, 118.0, 119.0), vec!["park", "picnic"]),
    ]);
    let store = Arc::new(store);
    println!(
        "indexed {} objects over space {:?}",
        store.len(),
        store.space()
    );

    // 2. Build the engine with SEAL's hierarchical hybrid signatures.
    let engine = SealEngine::build(
        store.clone(),
        FilterKind::Hierarchical {
            max_level: 6,
            budget: 8,
        },
    );
    println!(
        "engine: {} ({} KiB of index)",
        engine.filter_name(),
        engine.index_bytes() / 1024
    );

    // 3. Query: "who overlaps my neighbourhood and talks about coffee?"
    let dict = store.dictionary().expect("built from labels");
    let q = Query::with_token_ids(
        rect(5.0, 5.0, 45.0, 45.0),
        ["coffee", "mocha"].iter().filter_map(|t| dict.get(t)),
        0.3, // τ_R: at least 30% spatial Jaccard overlap
        0.3, // τ_T: at least 30% weighted textual Jaccard
    )
    .expect("thresholds in (0,1]");

    let result = engine.search(&q);
    println!(
        "query produced {} candidates, {} answers in {:?}",
        result.stats.candidates,
        result.answers.len(),
        result.stats.total_time()
    );
    for id in &result.answers {
        let o = store.get(*id);
        let tags: Vec<&str> = o.tokens.iter().filter_map(|t| dict.name(t)).collect();
        println!("  answer {:?}: region {:?} tags {:?}", id, o.region, tags);
    }
    assert_eq!(result.answers.len(), 2, "the two coffee shops match");
}

fn rect(a: f64, b: f64, c: f64, d: f64) -> Rect {
    Rect::new(a, b, c, d).expect("valid rectangle")
}
