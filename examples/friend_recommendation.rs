//! Friend recommendation in a location-aware social network (the
//! paper's second motivating application, Section 1): for a given user,
//! find other users with overlapping active regions *and* common
//! interests, comparing SEAL against the keyword-first and
//! spatial-first strawmen.
//!
//! Run with: `cargo run --release --example friend_recommendation`

use seal_core::{FilterKind, ObjectId, ObjectStore, Query, RoiObject, SealEngine};
use seal_datagen::{twitter_like, TwitterParams};
use seal_text::TokenSet;
use std::sync::Arc;

fn main() {
    let dataset = twitter_like(&TwitterParams {
        count: 30_000,
        seed: 77,
        ..TwitterParams::default()
    });
    let vocab = dataset.vocab_size;
    let objects: Vec<RoiObject> = dataset
        .objects
        .iter()
        .map(|o| RoiObject::new(o.region, TokenSet::from_ids(o.tokens.iter().copied())))
        .collect();
    let store = Arc::new(ObjectStore::from_objects(objects, vocab));

    // Three engines answering the same question.
    let engines = vec![
        SealEngine::build(store.clone(), FilterKind::seal_default()),
        SealEngine::build(store.clone(), FilterKind::KeywordFirst),
        SealEngine::build(store.clone(), FilterKind::SpatialFirst),
    ];

    // "Recommend friends": a user's own profile becomes the query (drop
    // them from the answers afterwards). Profiles are sparse at this
    // demo scale, so scan forward to the first user who actually has
    // overlapping neighbours — deterministic given the fixed seed.
    let seal = &engines[0];
    let me = (0..store.len() as u32)
        .map(ObjectId)
        .find(|&id| {
            let p = store.get(id);
            let q = Query::new(p.region, p.tokens.clone(), 0.05, 0.1).unwrap();
            seal.search(&q).answers.iter().any(|&a| a != id)
        })
        .expect("some user has at least one potential friend");
    println!("recommending for user {me:?}\n");
    let profile = store.get(me);
    let q =
        Query::new(profile.region, profile.tokens.clone(), 0.05, 0.1).expect("valid thresholds");

    let mut reference: Option<Vec<ObjectId>> = None;
    for engine in &engines {
        let mut result = engine.search(&q).sorted();
        result.answers.retain(|&id| id != me);
        println!(
            "{:<10} {:>4} friends   {:>8} candidates   filter {:>9.3?}   verify {:>9.3?}",
            engine.filter_name(),
            result.answers.len(),
            result.stats.candidates,
            result.stats.filter_time,
            result.stats.verify_time,
        );
        match &reference {
            None => reference = Some(result.answers.clone()),
            Some(r) => assert_eq!(r, &result.answers, "engines disagree on the friend list"),
        }
    }

    let friends = reference.unwrap_or_default();
    println!("\ntop recommendations for user {:?}:", me);
    for id in friends.iter().take(5) {
        let o = store.get(*id);
        println!(
            "  user {:?}: {} shared interests, {:.4} spatial Jaccard",
            id,
            q.tokens.intersection_size(&o.tokens),
            seal_geom::SpatialSim::jaccard(&q.region, &o.region),
        );
    }
}
