//! Wildlife monitoring (the paper's third motivating application,
//! Section 1): species are ROIs — habitat MBRs plus descriptive feature
//! tags — and a zoologist asks for species with certain features
//! inhabiting a specific region.
//!
//! Run with: `cargo run --example wildlife`

use seal_core::{FilterKind, ObjectStore, Query, SealEngine};
use seal_geom::Rect;
use std::sync::Arc;

fn main() {
    // Habitats in a 1000×1000 km study area (coordinates in km).
    // Tags are free-form feature vocabularies, as in the paper's
    // "mammal, omnivore" example.
    let store = ObjectStore::from_labeled(vec![
        (
            rect(100.0, 600.0, 400.0, 900.0), // a Yellowstone-like park
            vec!["grizzly", "bear", "mammal", "omnivore"],
        ),
        (
            rect(150.0, 650.0, 450.0, 950.0),
            vec!["elk", "mammal", "herbivore"],
        ),
        (
            rect(120.0, 580.0, 380.0, 880.0),
            vec!["wolf", "mammal", "carnivore", "pack"],
        ),
        (
            rect(600.0, 100.0, 900.0, 350.0),
            vec!["alligator", "reptile", "carnivore", "wetland"],
        ),
        (
            rect(640.0, 120.0, 920.0, 380.0),
            vec!["heron", "bird", "carnivore", "wetland"],
        ),
        (
            rect(50.0, 50.0, 250.0, 250.0),
            vec!["tortoise", "reptile", "herbivore", "desert"],
        ),
    ]);
    let store = Arc::new(store);
    let dict = store.dictionary().expect("labeled store");

    let engine = SealEngine::build(
        store.clone(),
        FilterKind::Hierarchical {
            max_level: 6,
            budget: 8,
        },
    );

    // "Which mammals live around the northern park?"
    let q = Query::with_token_ids(
        rect(80.0, 550.0, 420.0, 920.0),
        ["mammal"].iter().filter_map(|t| dict.get(t)),
        0.3,
        0.1,
    )
    .expect("valid thresholds");

    let result = engine.search(&q).sorted();
    println!("mammals overlapping the northern park:");
    for id in &result.answers {
        let o = store.get(*id);
        let tags: Vec<&str> = o.tokens.iter().filter_map(|t| dict.name(t)).collect();
        println!("  {:?} {:?}", id, tags);
        assert!(tags.contains(&"mammal"));
    }
    assert_eq!(result.answers.len(), 3, "grizzly, elk and wolf habitats");

    // "Any wetland carnivores in the south-east?"
    // Both wetland species carry two extra high-idf tokens (species
    // name + class), so the weighted Jaccard against {carnivore,
    // wetland} sits near 0.35 — ask for 0.3.
    let q2 = Query::with_token_ids(
        rect(580.0, 80.0, 950.0, 400.0),
        ["carnivore", "wetland"].iter().filter_map(|t| dict.get(t)),
        0.4,
        0.3,
    )
    .expect("valid thresholds");
    let r2 = engine.search(&q2).sorted();
    println!(
        "wetland carnivores in the south-east: {} species",
        r2.answers.len()
    );
    assert_eq!(r2.answers.len(), 2, "alligator and heron");
}

fn rect(a: f64, b: f64, c: f64, d: f64) -> Rect {
    Rect::new(a, b, c, d).expect("valid rectangle")
}
