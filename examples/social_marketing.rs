//! Location-based social marketing (the paper's first motivating
//! application, Section 1): a coffee shop holds a service area and a
//! product vocabulary, and wants the mobile-user profiles whose active
//! regions overlap its service area and whose interest tags match its
//! products.
//!
//! Run with: `cargo run --release --example social_marketing`

use seal_core::{FilterKind, ObjectStore, Query, RoiObject, SealEngine};
use seal_datagen::{twitter_like, TwitterParams};
use seal_text::TokenSet;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Synthesize 50k "user profiles": active regions + interest tags
    // (the Twitter-like generator reproduces the paper's region-size
    // skew and Zipf tag frequencies).
    let dataset = twitter_like(&TwitterParams {
        count: 50_000,
        seed: 2012,
        ..TwitterParams::default()
    });
    let vocab = dataset.vocab_size;
    let objects: Vec<RoiObject> = dataset
        .objects
        .iter()
        .map(|o| RoiObject::new(o.region, TokenSet::from_ids(o.tokens.iter().copied())))
        .collect();
    let store = Arc::new(ObjectStore::from_objects(objects, vocab));
    println!(
        "user profiles: {}   avg active-region area: {:.1} km²",
        store.len(),
        store.stats().avg_region_area
    );

    // The advertiser: SEAL with hierarchical hybrid signatures.
    let t0 = Instant::now();
    let engine = SealEngine::build(store.clone(), FilterKind::seal_default());
    println!(
        "built {} index in {:.1?} ({:.1} MiB)",
        engine.filter_name(),
        t0.elapsed(),
        engine.index_bytes() as f64 / (1024.0 * 1024.0)
    );

    // The campaign: a service area around a busy profile, advertising
    // a product vocabulary taken from that neighbourhood's own tags
    // (so there are real potential customers). The products are the
    // anchor's most *distinctive* tags — highest idf — which is what a
    // brand vocabulary looks like ("starbucks, mocha" rather than
    // "good, new").
    use seal_text::TokenWeights;
    let anchor = store.get(seal_core::ObjectId(0));
    let service_area = anchor.region.scaled(3.0).expect("valid region");
    let mut by_weight: Vec<seal_text::TokenId> = anchor.tokens.iter().collect();
    by_weight.sort_by(|a, b| {
        store
            .weights()
            .weight(*b)
            .total_cmp(&store.weights().weight(*a))
    });
    let products: Vec<seal_text::TokenId> = by_weight.into_iter().take(6).collect();
    let q = Query::new(
        service_area,
        TokenSet::from_ids(products.iter().copied()),
        0.05, // loose spatial bar: any meaningful overlap with the area
        0.2,  // interest bar: 20% weighted tag similarity
    )
    .expect("valid thresholds");

    let result = engine.search(&q);
    println!(
        "campaign targeting: {} candidates → {} matching customers in {:?} \
         ({} postings scanned)",
        result.stats.candidates,
        result.answers.len(),
        result.stats.total_time(),
        result.stats.postings_scanned,
    );

    // The anchor profile itself always qualifies (its region sits inside
    // the service area with Jaccard 1/9, its tags contain the products).
    assert!(
        result.answers.contains(&seal_core::ObjectId(0)),
        "the anchor customer must match its own campaign"
    );

    // Every reported customer really does overlap the service area and
    // share interests (spot-check the top few).
    for id in result.answers.iter().take(5) {
        let o = store.get(*id);
        let overlap = q.region.intersection_area(&o.region);
        println!(
            "  user {:?}: overlap {:.3} km², {} shared tags",
            id,
            overlap,
            q.tokens.intersection_size(&o.tokens)
        );
        assert!(overlap > 0.0);
    }
}
