//! Offline shim for `serde`: marker traits with blanket impls plus the
//! no-op derive macros. See `shims/README.md` for the rationale.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
