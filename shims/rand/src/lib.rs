//! Offline shim for `rand`: the `Rng`/`SeedableRng`/`StdRng` subset
//! this workspace uses. `StdRng` is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed (the only property the
//! workspace relies on), but the streams differ from upstream `rand`.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = ((self.end as i128).wrapping_sub(self.start as i128)) as u128;
                // Multiply-shift rejection-free mapping; bias is
                // negligible for the spans used in tests/benches.
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand`'s design).
pub trait Rng: RngCore {
    /// Draws a value over the type's full domain (`[0,1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u8..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        // The gridtree proptests draw seeds from 0..u64::MAX.
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
        }
    }

    #[test]
    fn object_safe_rng() {
        fn takes_dyn(rng: &mut dyn RngCore) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(takes_dyn(&mut rng) < 1.0);
    }
}
