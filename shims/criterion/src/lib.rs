//! Offline shim for `criterion`: a minimal wall-clock harness with the
//! same macro/builder surface. Each benchmark is warmed up, then timed
//! for `sample_size` batches; the median batch is reported. There is
//! no statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(25);

/// The benchmark driver (builder-configured, mirrors `criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the batch count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`group/label` in the printed output).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with
/// the code under test.
pub struct Bencher {
    sample_size: usize,
    /// (median per-iteration, mean per-iteration), filled by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Measures a closure: warm-up, batch-size calibration, then
    /// `sample_size` timed batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + calibration: find how many iterations fill the
        // batch target.
        let mut iters_per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || iters_per_batch >= 1 << 20 {
                break;
            }
            let scale = if elapsed.is_zero() {
                16
            } else {
                (BATCH_TARGET.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters_per_batch = iters_per_batch.saturating_mul(scale.clamp(2, 16));
        }
        let mut batches: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            batches.push(start.elapsed() / iters_per_batch as u32);
        }
        batches.sort_unstable();
        let median = batches[batches.len() / 2];
        let mean = batches.iter().sum::<Duration>() / batches.len() as u32;
        self.result = Some((median, mean));
    }
}

/// How much setup output to pre-batch in
/// [`iter_batched`](Bencher::iter_batched) (accepted for API
/// compatibility; the shim always sets up per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Measures `routine` with a fresh `setup` value per call; only
    /// the routine is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate the per-batch iteration count on routine time only.
        let mut iters_per_batch = 1u64;
        loop {
            let mut spent = Duration::ZERO;
            for _ in 0..iters_per_batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            if spent >= BATCH_TARGET || iters_per_batch >= 1 << 16 {
                break;
            }
            let scale = if spent.is_zero() {
                16
            } else {
                (BATCH_TARGET.as_nanos() / spent.as_nanos().max(1) + 1) as u64
            };
            iters_per_batch = iters_per_batch.saturating_mul(scale.clamp(2, 16));
        }
        let mut batches: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut spent = Duration::ZERO;
            for _ in 0..iters_per_batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            batches.push(spent / iters_per_batch as u32);
        }
        batches.sort_unstable();
        let median = batches[batches.len() / 2];
        let mean = batches.iter().sum::<Duration>() / batches.len() as u32;
        self.result = Some((median, mean));
    }
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, mean)) => println!("bench {name:<48} median {median:>12?}  mean {mean:>12?}"),
        None => println!("bench {name:<48} (no measurement: iter() never called)"),
    }
}

/// Declares a group of benchmark functions (both `criterion` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("named", |b| b.iter(|| black_box(3)));
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
