//! No-op `Serialize`/`Deserialize` derives (offline shim).
//!
//! The workspace derives these traits for documentation/compatibility
//! but never serializes through serde (the on-disk codec is the
//! hand-rolled one in `seal-index::serialize`), so the derives expand
//! to nothing.

use proc_macro::TokenStream;

/// Expands to nothing: the shim `Serialize` trait has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the shim `Deserialize` trait has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
