//! Offline shim for `proptest`: the strategy/`proptest!` subset this
//! workspace uses. Cases are sampled from a deterministic per-test
//! seed; failures report the failing inputs but are **not shrunk**.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property: samples `config.cases` cases from a seed
/// derived from the test name, reporting the case index on failure.
/// Called by the [`proptest!`] macro expansion; not public API.
pub fn run_cases(config: ProptestConfig, name: &str, case: impl Fn(u32, &mut StdRng)) {
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across properties.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(u64::from(i)));
        case(i, &mut rng);
    }
}

/// Asserts a condition inside a property (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Defines property tests. Supports the same surface the workspace
/// uses: an optional `#![proptest_config(..)]` header and `fn
/// name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config, stringify!($name), |__case, __rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest {} failed at case {}:\n  {}",
                            stringify!($name), __case, __inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                });
            }
        )*
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..100, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_vec_compose(
            v in collection::vec((0u32..10).prop_map(|x| x * 2), 0..16),
        ) {
            prop_assert!(v.len() < 16);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert_eq!(v.iter().filter(|x| **x >= 20).count(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(t in (0u8..4, 0u8..=3, 1i64..9, 0.0f64..2.0)) {
            prop_assert!(t.0 < 4 && t.1 <= 3 && t.2 >= 1 && t.3 < 2.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use super::Strategy;
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let s = 0u64..1_000_000;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
