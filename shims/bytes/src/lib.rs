//! Offline shim for the `bytes` crate: the subset the `seal-index`
//! codecs use. `Bytes` is a cheaply-cloneable `Arc<[u8]>` window;
//! `BytesMut` is a growable buffer; `Buf`/`BufMut` provide the
//! little-endian cursor accessors.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer (a window into shared
/// storage). Reading through [`Buf`] advances the window start.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Bytes remaining in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window of the remaining bytes (shares storage).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (little-endian accessors only — the
/// codecs in this workspace are exclusively little-endian).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// If fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Write cursor appending to a byte sink (little-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_u128_le(1u128 << 100);
        w.put_f64_le(3.5);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_u128_le(), 1u128 << 100);
        assert_eq!(r.get_f64_le(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(s2.as_slice(), &[2, 3]);
        assert_eq!(b.len(), 6, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn slice_buf_impl() {
        let v = [1u8, 0, 0, 0, 9];
        let mut s: &[u8] = &v;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
    }
}
